//! ScenarioGen: datacenter-scale scenario synthesis from a compact spec.
//!
//! The checked-in scenarios are hand-written and small (2–4 tenants); the
//! consolidation experiments the paper motivates (Sec. VII: many tenants
//! sharing one server's LLC and DDIO ways) need *hundreds* of tenants,
//! which nobody should write by hand. A [`GenSpec`] — a dozen knobs in a
//! `[generate]` table — expands deterministically into a full
//! [`Scenario`]: heavy-tailed per-tenant rates, a mix of application
//! classes, and an optional fraction of "attacker" tenants pinned to
//! cache-hostile policy overrides (which also stresses the policy-table
//! interning path with many distinct per-tenant [`PolicySpec`]s).
//!
//! Expansion is a pure function of `(spec, scenario header)`:
//!
//! * every random draw comes from [`SimRng`] streams seeded with
//!   [`derive_seed`] under stable labels (`scenariogen/<name>` for the
//!   rank shuffle, `scenariogen/<name>/t<i>` for tenant `i`), so adding
//!   or removing tenants never perturbs the others;
//! * tenants own disjoint contiguous core and port ranges by
//!   construction, so the expanded scenario passes
//!   [`Scenario::validate`] whenever the resource spaces fit.

use idio_core::net::gen::TrafficPattern;
use idio_core::net::packet::Dscp;
use idio_core::policy::{CatMode, PolicyCaps, PolicySpec, PrefetchMode, SteeringPolicy};
use idio_core::pool::PoolSpec;
use idio_core::stack::nf::{ChainStage, NfChain, NfKind};
use idio_engine::rng::{derive_seed, SimRng};

use crate::spec::{Scenario, SloSpec, TenantDef};

/// How the aggregate offered load is split across tenants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateDist {
    /// Every tenant offers the same rate.
    Uniform,
    /// Zipf-distributed rates: the tenant of rank `k` (1-based, assigned
    /// by a seeded shuffle) gets weight `1 / k^s` — the classic
    /// heavy-tailed datacenter tenant mix.
    Zipf {
        /// The Zipf exponent (`s = 1.1` is the common datacenter fit).
        s: f64,
    },
}

/// The application classes ScenarioGen draws tenants from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppClass {
    /// Latency-sensitive key-value-store front end: small frames, Poisson
    /// arrivals, touch-and-drop processing, optionally SLO-bounded.
    Kvs,
    /// A network-function chain: mid-size frames forwarded (L2 or
    /// deep-inspect) at a steady rate.
    NfChain,
    /// Bulk transfer: MTU frames at a steady rate, marked application
    /// class 1 (long use distance — direct-to-DRAM under IDIO).
    Bulk,
}

impl AppClass {
    /// The file spelling (`app_classes = ["kvs", ...]`).
    pub fn name(self) -> &'static str {
        match self {
            AppClass::Kvs => "kvs",
            AppClass::NfChain => "nf-chain",
            AppClass::Bulk => "bulk",
        }
    }

    /// Parses a file spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "kvs" => Some(AppClass::Kvs),
            "nf-chain" => Some(AppClass::NfChain),
            "bulk" => Some(AppClass::Bulk),
            _ => None,
        }
    }
}

/// The distinct policy overrides attacker tenants cycle through — cache-
/// hostile or otherwise non-default placements, several of them custom
/// capability sets so a large expansion exercises policy-domain interning
/// beyond the named presets.
const ATTACKER_POLICIES: [PolicySpec; 6] = [
    PolicySpec::Preset(SteeringPolicy::Ddio),
    PolicySpec::Preset(SteeringPolicy::IatDynamic),
    PolicySpec::Custom(PolicyCaps {
        invalidate: true,
        prefetch: PrefetchMode::Always,
        direct_dram: false,
        tune_ddio_ways: false,
        cat: CatMode::Off,
    }),
    PolicySpec::Custom(PolicyCaps {
        invalidate: false,
        prefetch: PrefetchMode::Always,
        direct_dram: true,
        tune_ddio_ways: false,
        cat: CatMode::Off,
    }),
    PolicySpec::Custom(PolicyCaps {
        invalidate: true,
        prefetch: PrefetchMode::Off,
        direct_dram: true,
        tune_ddio_ways: false,
        cat: CatMode::Off,
    }),
    PolicySpec::Custom(PolicyCaps {
        invalidate: false,
        prefetch: PrefetchMode::Off,
        direct_dram: false,
        tune_ddio_ways: true,
        cat: CatMode::Off,
    }),
];

/// Tenants below this mean rate may complete no packets within a short
/// horizon (their p99 would be undefined), so SLO bounds are only
/// attached above it.
const SLO_MIN_RATE_GBPS: f64 = 0.5;

/// Per-tenant rates are floored here so every tenant's traffic generator
/// has a positive, finite rate even deep in the Zipf tail.
const MIN_RATE_GBPS: f64 = 0.02;

/// A compact generator spec — the `[generate]` table of a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct GenSpec {
    /// Number of tenants to synthesize.
    pub tenants: usize,
    /// Root seed of every draw the expansion makes.
    pub seed: u64,
    /// Cores (= queues) per tenant; tenant `i` owns the contiguous block
    /// starting at `i * cores_per_tenant`.
    pub cores_per_tenant: u16,
    /// Flows per tenant; tenant `i` owns the port block starting at
    /// `base_port + i * flows_per_tenant`. Counts past the 16-bit port
    /// space (up to [`idio_core::net::gen::MAX_FLOW_SET_FLOWS`]) switch
    /// every tenant to a *wide* flow set — tenants then share `base_port`
    /// and are told apart by the per-tenant source-address block instead
    /// of disjoint port ranges.
    pub flows_per_tenant: u32,
    /// First port of the first tenant's flow block.
    pub base_port: u16,
    /// Aggregate offered load split across tenants by `rate_dist`.
    pub total_rate_gbps: f64,
    /// How the aggregate load is split.
    pub rate_dist: RateDist,
    /// The classes tenants are drawn from (uniformly; duplicates weight).
    pub app_classes: Vec<AppClass>,
    /// Fraction of tenants pinned to hostile policy overrides.
    pub attacker_frac: f64,
    /// SLO attached to non-attacker [`AppClass::Kvs`] tenants offering at
    /// least [`SLO_MIN_RATE_GBPS`].
    pub slo: Option<SloSpec>,
    /// Give every non-attacker tenant an auto CAT partition (`cat =
    /// "auto"` in the `[generate]` table): the closed-loop controller
    /// carves core-side LLC ways per tenant at runtime.
    pub cat_auto: bool,
}

impl GenSpec {
    /// A spec with the documented defaults: seed `0xDC`, one core and four
    /// flows per tenant, ports from 1024, 40 Gbps total load split
    /// Zipf(1.1), all three app classes, no attackers, no SLOs.
    pub fn new(tenants: usize) -> Self {
        GenSpec {
            tenants,
            seed: 0xDC,
            cores_per_tenant: 1,
            flows_per_tenant: 4,
            base_port: 1024,
            total_rate_gbps: 40.0,
            rate_dist: RateDist::Zipf { s: 1.1 },
            app_classes: vec![AppClass::Kvs, AppClass::NfChain, AppClass::Bulk],
            attacker_frac: 0.0,
            slo: None,
            cat_auto: false,
        }
    }

    /// Expands the spec into `header`'s tenant list (which must be empty:
    /// a scenario is either written out or generated, never both).
    ///
    /// The result is a pure function of `(self, header.name)` — the same
    /// spec under the same scenario name expands identically in every
    /// process on every machine.
    ///
    /// # Errors
    ///
    /// Returns a message when the tenants do not fit the core or port
    /// space, or the spec is degenerate (zero tenants, no app classes).
    pub fn expand(&self, header: Scenario) -> Result<Scenario, String> {
        if !header.tenants.is_empty() {
            return Err(format!(
                "scenario '{}' already has {} tenants; [generate] needs an empty tenant list",
                header.name,
                header.tenants.len()
            ));
        }
        if self.tenants == 0 {
            return Err("generator spec with zero tenants".into());
        }
        if self.app_classes.is_empty() {
            return Err("generator spec with no app classes".into());
        }
        if self.cores_per_tenant == 0 || self.flows_per_tenant == 0 {
            return Err("cores_per_tenant and flows_per_tenant must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.attacker_frac) {
            return Err(format!("attacker_frac {} out of range", self.attacker_frac));
        }
        let n = self.tenants;
        if n.saturating_mul(self.cores_per_tenant as usize) > u16::MAX as usize + 1 {
            return Err(format!(
                "{n} tenants x {} cores exceed the {}-core space",
                self.cores_per_tenant,
                u16::MAX as usize + 1
            ));
        }
        // A tenant whose own flow block overruns the port space is *wide*
        // (five-tuples spread over a per-tenant source-address block), so
        // tenants share `base_port` instead of owning disjoint port
        // ranges. Narrow tenants still need disjoint blocks.
        let wide = u32::from(self.base_port) + self.flows_per_tenant > u16::MAX as u32 + 1;
        let port_span = n * self.flows_per_tenant as usize;
        if !wide && self.base_port as usize + port_span > u16::MAX as usize + 1 {
            return Err(format!(
                "{n} tenants x {} flows from port {} exceed the 16-bit port space",
                self.flows_per_tenant, self.base_port
            ));
        }

        // Rank shuffle: which tenant sits where in the rate distribution's
        // tail. One master stream, separate from the per-tenant streams.
        let mut master = SimRng::seed_from(derive_seed(
            self.seed,
            &format!("scenariogen/{}", header.name),
        ));
        let mut rank: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = master.below(i as u64 + 1) as usize;
            rank.swap(i, j);
        }
        let weights: Vec<f64> = match self.rate_dist {
            RateDist::Uniform => vec![1.0; n],
            RateDist::Zipf { s } => (0..n)
                .map(|i| 1.0 / ((rank[i] + 1) as f64).powf(s))
                .collect(),
        };
        let rates = split_rates(self.total_rate_gbps, &weights);

        let mut scenario = header;
        for (i, &rate) in rates.iter().enumerate() {
            // One independent stream per tenant, in a fixed draw order
            // (class, attacker coin, class-specific draws): tenant i's
            // definition never depends on any other tenant.
            let mut rng = SimRng::seed_from(derive_seed(
                self.seed,
                &format!("scenariogen/{}/t{i}", scenario.name),
            ));
            let class = self.app_classes[rng.below(self.app_classes.len() as u64) as usize];
            let attacker = rng.unit_f64() < self.attacker_frac;
            let first_core = i as u16 * self.cores_per_tenant;
            let cores: Vec<u16> = (first_core..first_core + self.cores_per_tenant).collect();
            let base_port = if wide {
                self.base_port
            } else {
                self.base_port + (i as u32 * self.flows_per_tenant) as u16
            };
            let suffix = if attacker { "-atk" } else { "" };
            let name = format!("t{i:03}-{}{suffix}", class.name());
            let mut tenant = match class {
                AppClass::Kvs => TenantDef::new(
                    name,
                    NfKind::TouchDrop,
                    cores,
                    self.flows_per_tenant,
                    base_port,
                    TrafficPattern::Poisson {
                        rate_gbps: rate,
                        seed: rng.next_u64(),
                    },
                    256,
                ),
                // A real multi-stage service chain (the class's namesake):
                // half the tenants run the forwarding UPF pipeline, half a
                // deep-inspection drop chain, and all of them recycle
                // their mbufs from an LLC-resident pool.
                AppClass::NfChain => TenantDef::new(
                    name,
                    NfKind::Chain(if rng.below(2) == 0 {
                        NfChain::upf()
                    } else {
                        NfChain::new(&[
                            ChainStage::Parse,
                            ChainStage::Classify,
                            ChainStage::Inspect,
                        ])
                        .expect("static chain is valid")
                    }),
                    cores,
                    self.flows_per_tenant,
                    base_port,
                    TrafficPattern::Steady { rate_gbps: rate },
                    512,
                )
                .with_pool(PoolSpec::Recycle { slots: None }),
                AppClass::Bulk => TenantDef::new(
                    name,
                    if rng.below(2) == 0 {
                        NfKind::TouchDrop
                    } else {
                        NfKind::TouchDropCopy
                    },
                    cores,
                    self.flows_per_tenant,
                    base_port,
                    TrafficPattern::Steady { rate_gbps: rate },
                    1514,
                )
                .with_dscp(Dscp::CLASS1_DEFAULT),
            };
            if attacker {
                tenant = tenant.with_policy(
                    ATTACKER_POLICIES[rng.below(ATTACKER_POLICIES.len() as u64) as usize],
                );
            } else {
                if self.cat_auto {
                    tenant = tenant.with_policy(PolicySpec::Custom(PolicyCaps {
                        cat: CatMode::Auto,
                        ..scenario.policy.caps()
                    }));
                }
                if let Some(slo) = self.slo {
                    if class == AppClass::Kvs && rate >= SLO_MIN_RATE_GBPS && slo.is_bounded() {
                        tenant = tenant.with_slo(slo);
                    }
                }
            }
            scenario.tenants.push(tenant);
        }
        Ok(scenario)
    }
}

/// Splits `total` across `weights` proportionally, flooring every share
/// at [`MIN_RATE_GBPS`] and renormalizing the unfloored shares over the
/// remaining budget, so the emitted rates sum to *exactly* `total`
/// (bit-for-bit as `f64`) whenever the floors leave room. Only when
/// `weights.len() * MIN_RATE_GBPS` exceeds `total` is every share the
/// floor and the sum unavoidably overshoots.
fn split_rates(total: f64, weights: &[f64]) -> Vec<f64> {
    let n = weights.len();
    let mut rates = vec![0.0; n];
    let mut floored = vec![false; n];
    // Fixed point: flooring a tail tenant shrinks the budget the
    // remaining weights share, which can push further tenants under the
    // floor — at most n rounds, typically one or two.
    loop {
        let budget = total - MIN_RATE_GBPS * floored.iter().filter(|&&f| f).count() as f64;
        let wsum: f64 = weights
            .iter()
            .zip(&floored)
            .filter(|(_, &f)| !f)
            .map(|(w, _)| w)
            .sum();
        let mut changed = false;
        for i in 0..n {
            if floored[i] {
                rates[i] = MIN_RATE_GBPS;
                continue;
            }
            let r = budget * weights[i] / wsum;
            if !r.is_finite() || r < MIN_RATE_GBPS {
                floored[i] = true;
                changed = true;
            } else {
                rates[i] = r;
            }
        }
        if !changed {
            break;
        }
    }
    // Make the forward (index-order) f64 sum hit `total` exactly. Two
    // passes: fold the bulk of the residual into the largest unfloored
    // share, then refine by single ulps of the *last* unfloored share.
    // The last share matters: a perturbation there passes through only
    // the final roundings (whose grids are nondecreasing along the
    // chain), so the sum moves at most one representable step per ulp
    // and cannot jump over `total` — perturbing an earlier share
    // re-rounds every later partial sum and can skip it (observed for
    // 7-tenant Zipf splits).
    if let Some(head) = (0..n)
        .filter(|&i| !floored[i])
        .max_by(|&a, &b| rates[a].total_cmp(&rates[b]))
    {
        let sum: f64 = rates.iter().sum();
        rates[head] += total - sum;
        let last = (0..n)
            .rev()
            .find(|&i| !floored[i])
            .expect("head is unfloored");
        for _ in 0..8192 {
            let sum: f64 = rates.iter().sum();
            if sum == total {
                break;
            }
            rates[last] = if sum < total {
                rates[last].next_up()
            } else {
                rates[last].next_down()
            };
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_core::config::FlowSteering;
    use idio_engine::time::{Duration, SimTime};

    fn header(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            description: "generated".into(),
            policy: SteeringPolicy::Idio,
            steering: FlowSteering::Perfect,
            duration: SimTime::from_us(60),
            drain_grace: Duration::from_us(60),
            perfect_filters: None,
            atr_lifetime: None,
            pool_idle_flush: None,
            tenants: Vec::new(),
        }
    }

    #[test]
    fn expansion_is_deterministic_and_valid() {
        let mut spec = GenSpec::new(12);
        spec.attacker_frac = 0.25;
        spec.slo = Some(SloSpec {
            max_p99_ns: Some(50_000_000),
            max_drop_rate: Some(0.5),
        });
        let a = spec.expand(header("dc")).unwrap();
        let b = spec.expand(header("dc")).unwrap();
        assert_eq!(a, b, "same spec, same name: identical expansion");
        a.validate().expect("generated scenarios are valid");
        assert_eq!(a.tenants.len(), 12);
        assert_eq!(a.num_cores(), 12);
    }

    #[test]
    fn expansion_depends_on_seed_and_name() {
        let spec = GenSpec::new(8);
        let base = spec.expand(header("dc")).unwrap();
        let renamed = spec.expand(header("dc2")).unwrap();
        assert_ne!(base.tenants, renamed.tenants, "name feeds the seed labels");
        let mut reseeded_spec = spec.clone();
        reseeded_spec.seed = 0xDD;
        let reseeded = reseeded_spec.expand(header("dc")).unwrap();
        assert_ne!(base.tenants, reseeded.tenants);
    }

    #[test]
    fn tenants_own_disjoint_contiguous_resources() {
        let mut spec = GenSpec::new(20);
        spec.cores_per_tenant = 2;
        spec.flows_per_tenant = 8;
        let sc = spec.expand(header("res")).unwrap();
        for (i, t) in sc.tenants.iter().enumerate() {
            assert_eq!(t.cores, vec![i as u16 * 2, i as u16 * 2 + 1]);
            assert_eq!(t.base_port, 1024 + i as u16 * 8);
            assert_eq!(t.flows, 8);
        }
        sc.validate().unwrap();
    }

    #[test]
    fn classes_attackers_and_slos_follow_the_spec() {
        let mut spec = GenSpec::new(60);
        spec.attacker_frac = 0.4;
        spec.slo = Some(SloSpec {
            max_p99_ns: Some(10_000_000),
            max_drop_rate: None,
        });
        let sc = spec.expand(header("mix")).unwrap();
        let attackers = sc.tenants.iter().filter(|t| t.policy.is_some()).count();
        assert!(attackers > 0, "40% of 60 tenants should include attackers");
        assert!(attackers < 60);
        let mut distinct: Vec<PolicySpec> = Vec::new();
        for t in &sc.tenants {
            assert_eq!(t.name.ends_with("-atk"), t.policy.is_some());
            if let Some(p) = t.policy {
                if !distinct.contains(&p) {
                    distinct.push(p);
                }
            }
            if let Some(slo) = t.slo {
                assert!(t.name.contains("kvs") && t.policy.is_none());
                assert_eq!(slo.max_p99_ns, Some(10_000_000));
                if let TrafficPattern::Poisson { rate_gbps, .. } = t.traffic {
                    assert!(rate_gbps >= SLO_MIN_RATE_GBPS);
                } else {
                    panic!("kvs tenants are Poisson");
                }
            }
        }
        assert!(distinct.len() >= 3, "attackers cycle multiple policy specs");
        assert!(
            sc.tenants.iter().any(|t| t.slo.is_some()),
            "head kvs tenants get the SLO"
        );
    }

    #[test]
    fn zipf_rates_are_heavy_tailed_and_sum_close_to_total() {
        let spec = GenSpec::new(50);
        let sc = spec.expand(header("zipf")).unwrap();
        let rate = |t: &TenantDef| match t.traffic {
            TrafficPattern::Steady { rate_gbps } | TrafficPattern::Poisson { rate_gbps, .. } => {
                rate_gbps
            }
            TrafficPattern::Bursty(_) => unreachable!("generator never emits bursty"),
        };
        let rates: Vec<f64> = sc.tenants.iter().map(rate).collect();
        let sum: f64 = rates.iter().sum();
        // Floored tail shares are renormalized away: the total is exact.
        assert_eq!(sum, 40.0, "renormalized split hits the target exactly");
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 10.0, "heavy tail: {max} vs {min}");
        assert!(rates.iter().all(|&r| r >= MIN_RATE_GBPS));
    }

    /// The satellite's property: for every tenant count the floor can
    /// interact with, the emitted rates sum to exactly the target and
    /// never dip below the floor.
    #[test]
    fn rate_split_sums_exactly_for_all_tenant_counts() {
        for n in 1..=300usize {
            let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(1.1)).collect();
            let rates = split_rates(40.0, &weights);
            let sum: f64 = rates.iter().sum();
            assert_eq!(sum, 40.0, "n={n}: sum {sum}");
            assert!(
                rates.iter().all(|&r| r >= MIN_RATE_GBPS),
                "n={n}: floor violated"
            );
            let uniform = split_rates(40.0, &vec![1.0; n]);
            assert_eq!(uniform.iter().sum::<f64>(), 40.0, "n={n} uniform");
        }
        // Infeasible target: every share floors; the sum overshoots but
        // stays the minimal n * floor.
        let rates = split_rates(0.05, &[1.0, 1.0, 1.0, 1.0]);
        assert!(rates.iter().all(|&r| r == MIN_RATE_GBPS));
    }

    #[test]
    fn cat_auto_marks_non_attackers_only() {
        let mut spec = GenSpec::new(24);
        spec.attacker_frac = 0.3;
        spec.cat_auto = true;
        let sc = spec.expand(header("cat")).unwrap();
        sc.validate().expect("cat-auto scenarios are valid");
        let mut auto = 0;
        for t in &sc.tenants {
            let caps = t.policy.expect("every tenant carries a policy").caps();
            if t.name.ends_with("-atk") {
                assert_eq!(
                    caps.cat,
                    CatMode::Off,
                    "{}: attackers keep their policy",
                    t.name
                );
            } else {
                assert_eq!(caps.cat, CatMode::Auto, "{}", t.name);
                auto += 1;
            }
        }
        assert!(auto > 0, "some non-attackers exist");
    }

    #[test]
    fn resource_exhaustion_is_an_error() {
        let mut spec = GenSpec::new(9000);
        spec.flows_per_tenant = 8;
        let err = spec.expand(header("big")).unwrap_err();
        assert!(err.contains("port space"), "{err}");
        let mut spec = GenSpec::new(40_000);
        spec.cores_per_tenant = 2;
        spec.flows_per_tenant = 1;
        let err = spec.expand(header("big")).unwrap_err();
        assert!(err.contains("core space"), "{err}");
    }

    #[test]
    fn expansion_rejects_populated_scenarios() {
        let mut h = header("busy");
        h.tenants.push(TenantDef::new(
            "existing",
            NfKind::TouchDrop,
            vec![0],
            1,
            9000,
            TrafficPattern::Steady { rate_gbps: 1.0 },
            256,
        ));
        assert!(GenSpec::new(4).expand(h).is_err());
    }
}
