//! # idio-scenario
//!
//! Declarative multi-tenant scenarios on top of the full-system
//! simulator: a [`Scenario`] names a set of [`TenantDef`]s — each binding
//! a traffic source, an application class (DSCP), a network function and
//! a group of cores — and the runner executes the mixed workload plus one
//! *solo* run per tenant on the [`idio_core::sweep`] worker pool,
//! emitting a per-tenant [`report::ScenarioReport`]:
//!
//! * throughput, drop rate and packet-latency percentiles (from the
//!   per-core `core{i}.pkt_latency_ns` histograms),
//! * the steering mix (DRAM/LLC/MLC line counts) and MLC writebacks
//!   attributed to the tenant's cores,
//! * a cross-tenant *interference* summary: the tenant's latency when it
//!   runs alone vs. inside the mix (Sec. VI's noisy-neighbour question,
//!   asked of every tenant).
//!
//! Flows are spread across each tenant's cores via the flow director
//! (perfect filters by default, RSS/ATR optionally) rather than the
//! legacy one-flow-per-core wiring, and reports are byte-identical at any
//! `--jobs` because every cell's seed derives from its stable label.
//!
//! Scenarios can also live in **files** — a dependency-free TOML subset
//! parsed by [`spec_file`] with line/column errors and written back by
//! [`spec_file::to_file_string`] — and a file's `[generate]` table
//! ([`gen::GenSpec`]) expands a compact spec into hundreds of tenants
//! deterministically. The report path *streams*: each sweep cell is
//! folded into per-tenant aggregates on the worker that ran it
//! ([`report::ScenarioReportBuilder`]), so memory stays O(tenants), not
//! O(cells × histograms), with the JSON still byte-identical at any
//! worker count.
//!
//! # Quick start
//!
//! ```
//! use idio_core::sweep::SweepOptions;
//! use idio_scenario::{builtin, run_scenario};
//!
//! let scenario = builtin("mixed-rate").expect("built-in");
//! let report = run_scenario(&scenario, &SweepOptions::serial()).unwrap();
//! assert_eq!(report.tenants.len(), 3);
//! assert!(report.to_json().starts_with('{'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod gen;
pub mod report;
pub mod run;
pub mod spec;
pub mod spec_file;

pub use builtin::{builtin, builtin_names, builtins};
pub use gen::{AppClass, GenSpec, RateDist};
pub use report::{
    Interference, LatencyStats, PoolAgg, ScenarioReport, ScenarioReportBuilder, SloOutcome,
    SteerMix, TenantReport,
};
pub use run::{run_scenario, scenario_cells};
pub use spec::{Scenario, SloSpec, TenantDef};
pub use spec_file::{load_path, parse_str, to_file_string, SpecError};
