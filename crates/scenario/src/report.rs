//! Per-tenant scenario reports and their deterministic JSON rendering.
//!
//! Everything in a [`ScenarioReport`] is a pure function of the scenario
//! and the sweep's root seed — no wall-clock, no thread identity — so the
//! rendering is byte-identical at any worker count and can be golden-
//! tested exactly like the paper figures.
//!
//! For datacenter-scale scenarios (hundreds of tenants, one solo cell
//! each) the report is assembled *streamingly* through a
//! [`ScenarioReportBuilder`]: every finished cell is reduced to a small
//! [`CellFold`] on the worker that ran it — dropping the full
//! [`RunReport`] with its histograms immediately — and the folds are
//! merged into per-tenant running aggregates. Peak builder memory is
//! O(tenants), not O(cells × histograms), and because each fold is a pure
//! function of its own cell, the assembled JSON stays byte-identical at
//! any `--jobs`.

use idio_core::report::RunReport;
use idio_engine::telemetry::Histogram;

use crate::spec::{Scenario, SloSpec};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Packet-latency summary of one tenant in one run (nanoseconds), taken
/// from the merged `core{i}.pkt_latency_ns` histograms of the tenant's
/// cores. Percentiles are the log2-bucket upper-bound estimates of
/// [`idio_engine::telemetry::Histogram::percentile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Completed packets the summary covers.
    pub count: u64,
    /// Mean latency.
    pub mean_ns: f64,
    /// Median (bucket upper bound).
    pub p50_ns: u64,
    /// 90th percentile (bucket upper bound).
    pub p90_ns: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_ns: u64,
    /// Worst observed latency (exact).
    pub max_ns: u64,
}

impl LatencyStats {
    fn to_json(self) -> String {
        format!(
            "{{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            self.count,
            json_f64(self.mean_ns),
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.max_ns
        )
    }
}

/// Where a tenant's inbound DMA lines were placed (the steering mix).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SteerMix {
    /// Lines write-allocated into the shared LLC (DDIO path).
    pub llc: u64,
    /// Lines steered into the tenant cores' MLCs.
    pub mlc: u64,
    /// Lines sent directly to DRAM.
    pub dram: u64,
}

impl SteerMix {
    fn to_json(self) -> String {
        format!(
            "{{\"llc\": {}, \"mlc\": {}, \"dram\": {}}}",
            self.llc, self.mlc, self.dram
        )
    }
}

/// Solo-vs-mixed latency comparison for one tenant: what sharing the
/// machine with the other tenants cost it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interference {
    /// Mixed p50 minus solo p50 (negative = faster in the mix).
    pub p50_delta_ns: i64,
    /// Mixed p99 minus solo p99.
    pub p99_delta_ns: i64,
    /// Mixed p99 over solo p99 (1.0 = no interference); `NaN` renders as
    /// `null` when the solo p99 was zero.
    pub p99_ratio: f64,
}

impl Interference {
    fn to_json(self) -> String {
        format!(
            "{{\"p50_delta_ns\": {}, \"p99_delta_ns\": {}, \"p99_ratio\": {}}}",
            self.p50_delta_ns,
            self.p99_delta_ns,
            json_f64(self.p99_ratio)
        )
    }
}

/// Flow-director steering mix of one tenant's queues (mixed run), summed
/// from the engine's `fd.q{q}.*` counters. Present only when the run
/// exported flow-director metrics (some tenant's flows outgrew its
/// perfect-filter budget), so filter-resident scenarios render exactly
/// as before.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FdMix {
    /// Packets steered by a pinned perfect-match filter.
    pub perfect: u64,
    /// Packets steered by a live ATR filter-table entry for their flow.
    pub atr: u64,
    /// Packets steered by a colliding filter-table entry (some *other*
    /// flow's queue).
    pub collision: u64,
    /// Packets that fell through to the RSS hash.
    pub rss: u64,
    /// Packets that landed on a queue other than their flow's home —
    /// their payloads warm the wrong core's MLC.
    pub mis_steered: u64,
}

impl FdMix {
    fn to_json(self) -> String {
        format!(
            "{{\"perfect\": {}, \"atr\": {}, \"collision\": {}, \"rss\": {}, \"mis_steered\": {}}}",
            self.perfect, self.atr, self.collision, self.rss, self.mis_steered
        )
    }
}

/// Buffer-pool aggregates of one tenant's queues (mixed run), summed
/// from the engine's `pool.q{q}.*` counters. Present only for tenants
/// that declared an explicit pool, so pool-free reports render exactly
/// as before.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolAgg {
    /// Buffers returned to the recycle free list (always 0 for `dram`
    /// pools, which never re-use buffer identity).
    pub recycled: u64,
    /// Allocation attempts that found the recycle pool empty — each one
    /// is a dropped packet.
    pub starved: u64,
    /// Allocations made past the cache-resident budget — the latent-bloat
    /// measure of an unbounded `dram` pool.
    pub spilled: u64,
}

impl PoolAgg {
    fn to_json(self) -> String {
        format!(
            "{{\"recycled\": {}, \"starved\": {}, \"spilled\": {}}}",
            self.recycled, self.starved, self.spilled
        )
    }
}

/// The evaluation of one tenant's [`crate::spec::SloSpec`] against the
/// mixed run: the bounds, what was actually measured, and the violations
/// (empty = the tenant met its objectives).
#[derive(Debug, Clone, PartialEq)]
pub struct SloOutcome {
    /// The p99 bound, if one was set.
    pub max_p99_ns: Option<u64>,
    /// The drop-rate bound, if one was set.
    pub max_drop_rate: Option<f64>,
    /// The tenant's measured mixed-run p99 (`None` if nothing completed).
    pub actual_p99_ns: Option<u64>,
    /// The tenant's measured mixed-run drop rate.
    pub actual_drop_rate: f64,
    /// Human-readable description of each violated bound.
    pub violations: Vec<String>,
}

impl SloOutcome {
    /// Whether the tenant met every bound.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }

    fn to_json(&self) -> String {
        let opt_u64 = |v: Option<u64>| v.map_or("null".into(), |x| x.to_string());
        let violations: Vec<String> = self.violations.iter().map(|v| json_string(v)).collect();
        format!(
            "{{\"pass\": {}, \"max_p99_ns\": {}, \"max_drop_rate\": {}, \"actual_p99_ns\": {}, \"actual_drop_rate\": {}, \"violations\": [{}]}}",
            self.pass(),
            opt_u64(self.max_p99_ns),
            self.max_drop_rate.map_or("null".into(), json_f64),
            opt_u64(self.actual_p99_ns),
            json_f64(self.actual_drop_rate),
            violations.join(", ")
        )
    }
}

/// Everything the scenario runner measured about one tenant.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Display name of the tenant's network function.
    pub nf: &'static str,
    /// The cores the tenant owns.
    pub cores: Vec<u16>,
    /// Packets the NIC delivered into the tenant's rings (mixed run).
    pub rx_packets: u64,
    /// Packets dropped at the tenant's full rings (mixed run).
    pub rx_drops: u64,
    /// `rx_drops / (rx_packets + rx_drops)`, 0 when idle.
    pub drop_rate: f64,
    /// Packets the tenant's NFs fully processed (mixed run).
    pub completed: u64,
    /// Delivered goodput over the traffic horizon, in Gbit/s.
    pub throughput_gbps: f64,
    /// MLC writebacks of the tenant's cores (mixed run) — the quantity
    /// IDIO's FSM throttles on.
    pub mlc_wb: u64,
    /// Steering mix of DMA lines destined to the tenant's cores.
    pub steer: SteerMix,
    /// Latency summary in the mixed run (`None` if nothing completed).
    pub latency: Option<LatencyStats>,
    /// Latency summary of the tenant's solo run.
    pub solo_latency: Option<LatencyStats>,
    /// Solo-vs-mixed comparison (`None` unless both runs completed
    /// packets).
    pub interference: Option<Interference>,
    /// Label of the tenant's steering-policy override, when it has one
    /// (`None` = inherits the scenario policy; omitted from the JSON so
    /// override-free reports render exactly as before).
    pub policy: Option<String>,
    /// SLO evaluation, when the tenant declared bounds (omitted from the
    /// JSON otherwise).
    pub slo: Option<SloOutcome>,
    /// Buffer-pool aggregates, when the tenant declared an explicit pool
    /// (omitted from the JSON otherwise).
    pub pool: Option<PoolAgg>,
    /// Flow-director steering mix, when the run exported `fd.*` metrics
    /// (omitted from the JSON otherwise).
    pub fd: Option<FdMix>,
}

impl TenantReport {
    fn to_json(&self, indent: &str) -> String {
        let pad = format!("{indent}  ");
        let cores: Vec<String> = self.cores.iter().map(|c| c.to_string()).collect();
        let opt = |v: &Option<String>| v.clone().unwrap_or_else(|| "null".into());
        let latency = opt(&self.latency.map(LatencyStats::to_json));
        let solo = opt(&self.solo_latency.map(LatencyStats::to_json));
        let interference = opt(&self.interference.map(Interference::to_json));
        // The policy and slo keys are only rendered when present, so
        // reports of scenarios that use neither are byte-identical to the
        // pre-policy-engine format (and its blessed goldens).
        let mut extra = String::new();
        if let Some(p) = &self.policy {
            extra.push_str(&format!(",\n{pad}\"policy\": {}", json_string(p)));
        }
        if let Some(s) = &self.slo {
            extra.push_str(&format!(",\n{pad}\"slo\": {}", s.to_json()));
        }
        if let Some(p) = &self.pool {
            extra.push_str(&format!(",\n{pad}\"pool\": {}", p.to_json()));
        }
        if let Some(f) = &self.fd {
            extra.push_str(&format!(",\n{pad}\"fd\": {}", f.to_json()));
        }
        format!(
            "{{\n\
             {pad}\"name\": {},\n\
             {pad}\"nf\": {},\n\
             {pad}\"cores\": [{}],\n\
             {pad}\"rx_packets\": {},\n\
             {pad}\"rx_drops\": {},\n\
             {pad}\"drop_rate\": {},\n\
             {pad}\"completed\": {},\n\
             {pad}\"throughput_gbps\": {},\n\
             {pad}\"mlc_wb\": {},\n\
             {pad}\"steer\": {},\n\
             {pad}\"latency\": {latency},\n\
             {pad}\"solo_latency\": {solo},\n\
             {pad}\"interference\": {interference}{extra}\n\
             {indent}}}",
            json_string(&self.name),
            json_string(self.nf),
            cores.join(", "),
            self.rx_packets,
            self.rx_drops,
            json_f64(self.drop_rate),
            self.completed,
            json_f64(self.throughput_gbps),
            self.mlc_wb,
            self.steer.to_json(),
        )
    }
}

/// The complete result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// Label of the steering policy the run used.
    pub policy: &'static str,
    /// Root seed every cell seed was derived from.
    pub root_seed: u64,
    /// Traffic horizon in nanoseconds.
    pub duration_ns: u64,
    /// Mixed-run aggregates: packets delivered by the NIC.
    pub rx_packets: u64,
    /// Mixed-run aggregates: packets dropped at full rings.
    pub rx_drops: u64,
    /// Mixed-run aggregates: packets fully processed.
    pub completed: u64,
    /// Per-tenant reports, in declaration order.
    pub tenants: Vec<TenantReport>,
}

impl ScenarioReport {
    /// Every SLO violation across all tenants, prefixed with the tenant
    /// name — empty when every bounded tenant met its objectives. The
    /// `scenario` CLI exits non-zero when this is non-empty.
    pub fn slo_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.tenants {
            if let Some(slo) = &t.slo {
                for v in &slo.violations {
                    out.push(format!("tenant '{}': {v}", t.name));
                }
            }
        }
        out
    }

    /// Renders the report as deterministic, human-reviewable JSON (stable
    /// key order, no trailing newline).
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self.tenants.iter().map(|t| t.to_json("    ")).collect();
        format!(
            "{{\n\
             \x20 \"scenario\": {},\n\
             \x20 \"description\": {},\n\
             \x20 \"policy\": {},\n\
             \x20 \"root_seed\": {},\n\
             \x20 \"duration_ns\": {},\n\
             \x20 \"totals\": {{\"rx_packets\": {}, \"rx_drops\": {}, \"completed\": {}}},\n\
             \x20 \"tenants\": [\n    {}\n  ]\n\
             }}",
            json_string(&self.scenario),
            json_string(&self.description),
            json_string(self.policy),
            self.root_seed,
            self.duration_ns,
            self.rx_packets,
            self.rx_drops,
            self.completed,
            tenants.join(",\n    "),
        )
    }
}

/// Merges the `core{i}.pkt_latency_ns` histograms of `cores` out of a
/// run's final metrics snapshot.
fn merged_latency(report: &RunReport, cores: &[u16]) -> Option<LatencyStats> {
    let mut h = Histogram::new();
    for &c in cores {
        if let Some(hc) = report.metrics.histogram(&format!("core{c}.pkt_latency_ns")) {
            h.merge(hc);
        }
    }
    if h.count() == 0 {
        return None;
    }
    Some(LatencyStats {
        count: h.count(),
        mean_ns: h.mean(),
        p50_ns: h.percentile(50.0).expect("non-empty"),
        p90_ns: h.percentile(90.0).expect("non-empty"),
        p99_ns: h.percentile(99.0).expect("non-empty"),
        max_ns: h.max(),
    })
}

fn sum_counters(report: &RunReport, names: impl Iterator<Item = String>) -> u64 {
    names.map(|n| report.metrics.counter(&n)).sum()
}

/// Everything the mixed run contributes about one tenant, already reduced
/// to fixed-size aggregates (no histograms retained).
#[derive(Debug, Clone)]
pub struct TenantMixed {
    /// Packets delivered into the tenant's rings.
    pub rx_packets: u64,
    /// Packets dropped at the tenant's full rings.
    pub rx_drops: u64,
    /// Packets the tenant's NFs fully processed.
    pub completed: u64,
    /// MLC writebacks of the tenant's cores.
    pub mlc_wb: u64,
    /// Steering mix of DMA lines destined to the tenant's cores.
    pub steer: SteerMix,
    /// Merged latency summary of the tenant's cores.
    pub latency: Option<LatencyStats>,
    /// Buffer-pool aggregates of the tenant's queues (explicit pools
    /// only).
    pub pool: Option<PoolAgg>,
    /// Flow-director steering mix of the tenant's queues (`fd.*`-exporting
    /// runs only).
    pub fd: Option<FdMix>,
}

/// The mixed cell reduced to run totals plus per-tenant aggregates.
#[derive(Debug, Clone)]
pub struct MixedFold {
    /// Packets the NIC delivered, across all tenants.
    pub rx_packets: u64,
    /// Packets dropped at full rings, across all tenants.
    pub rx_drops: u64,
    /// Packets fully processed, across all tenants.
    pub completed: u64,
    /// Per-tenant aggregates, in scenario declaration order.
    pub tenants: Vec<TenantMixed>,
}

/// One scenario cell reduced to the fixed-size aggregate the report needs
/// — produced on the sweep worker by [`ScenarioReportBuilder::reduce`] so
/// the cell's full [`RunReport`] can be dropped immediately.
#[derive(Debug, Clone)]
pub enum CellFold {
    /// The mixed cell (always cell 0 of a scenario sweep).
    Mixed(MixedFold),
    /// The solo cell of tenant `tenant`: only its merged latency summary
    /// is kept.
    Solo {
        /// Index of the tenant in scenario declaration order.
        tenant: usize,
        /// The tenant's solo latency summary (`None` if nothing
        /// completed).
        latency: Option<LatencyStats>,
    },
}

/// Per-tenant slot of the streaming builder: the static identity copied
/// from the scenario plus the aggregates folded in so far.
#[derive(Debug, Clone)]
struct TenantSlot {
    name: String,
    nf: &'static str,
    cores: Vec<u16>,
    /// The tenant's queue indices in the mixed run (queue index ==
    /// workload index; workloads are pushed in declaration order).
    queues: std::ops::Range<usize>,
    packet_len: u16,
    policy: Option<String>,
    slo: Option<SloSpec>,
    /// Whether the tenant declared an explicit buffer pool — gates the
    /// `pool.q{q}.*` counter sums so pool-free tenants render unchanged.
    has_pool: bool,
    mixed: Option<TenantMixed>,
    /// `Some(...)` once the solo cell folded (its inner value may still be
    /// `None` when the solo run completed no packets).
    solo_latency: Option<Option<LatencyStats>>,
}

/// Streaming assembly of a [`ScenarioReport`]: cells are reduced to
/// [`CellFold`]s on the workers ([`reduce`](Self::reduce), `&self`, safe
/// to call concurrently) and merged into per-tenant running aggregates
/// ([`fold`](Self::fold)); [`finish`](Self::finish) materialises the
/// report once every cell has been folded.
///
/// The builder never stores a [`RunReport`]: its memory is O(tenants)
/// regardless of how many packets, flows or histogram buckets the cells
/// produced. Fold order does not matter — every fold targets its own slot
/// — which is what keeps the report byte-identical at any worker count.
#[derive(Debug, Clone)]
pub struct ScenarioReportBuilder {
    scenario: String,
    description: String,
    policy: &'static str,
    root_seed: u64,
    duration_ns: u64,
    totals: Option<(u64, u64, u64)>,
    tenants: Vec<TenantSlot>,
}

impl ScenarioReportBuilder {
    /// Prepares the builder for `scenario`: copies the static per-tenant
    /// identity (names, cores, queue spans, SLO bounds) and leaves every
    /// aggregate slot empty.
    pub fn new(scenario: &Scenario, root_seed: u64) -> Self {
        let mut next_workload = 0usize;
        let tenants = scenario
            .tenants
            .iter()
            .map(|t| {
                let queues = next_workload..next_workload + t.cores.len();
                next_workload = queues.end;
                TenantSlot {
                    name: t.name.clone(),
                    nf: t.nf.name(),
                    cores: t.cores.clone(),
                    queues,
                    packet_len: t.packet_len,
                    policy: t.policy.map(|p| p.label()),
                    slo: t.slo.filter(SloSpec::is_bounded),
                    has_pool: t.pool.is_some(),
                    mixed: None,
                    solo_latency: None,
                }
            })
            .collect();
        ScenarioReportBuilder {
            scenario: scenario.name.clone(),
            description: scenario.description.clone(),
            policy: scenario.policy.label(),
            root_seed,
            duration_ns: scenario.duration.as_ns(),
            totals: None,
            tenants,
        }
    }

    /// Number of cells the scenario sweep produces (mixed + one solo per
    /// tenant) — the indices [`reduce`](Self::reduce) accepts.
    pub fn num_cells(&self) -> usize {
        self.tenants.len() + 1
    }

    /// Reduces cell `cell` (0 = mixed, `i + 1` = tenant `i`'s solo run) to
    /// its fold. Takes `&self` so sweep workers can reduce concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= self.num_cells()`.
    pub fn reduce(&self, cell: usize, report: &RunReport) -> CellFold {
        assert!(cell < self.num_cells(), "cell {cell} out of range");
        if cell == 0 {
            let tenants = self
                .tenants
                .iter()
                .map(|slot| TenantMixed {
                    rx_packets: sum_counters(
                        report,
                        slot.queues.clone().map(|q| format!("queue{q}.rx.packets")),
                    ),
                    rx_drops: sum_counters(
                        report,
                        slot.queues.clone().map(|q| format!("queue{q}.rx.drops")),
                    ),
                    completed: sum_counters(
                        report,
                        slot.cores
                            .iter()
                            .map(|c| format!("core{c}.packets.completed")),
                    ),
                    mlc_wb: slot
                        .cores
                        .iter()
                        .map(|&c| report.hierarchy.core[c as usize].mlc_wb.get())
                        .sum(),
                    steer: SteerMix {
                        llc: sum_counters(
                            report,
                            slot.cores.iter().map(|c| format!("core{c}.steer.llc")),
                        ),
                        mlc: sum_counters(
                            report,
                            slot.cores.iter().map(|c| format!("core{c}.steer.mlc")),
                        ),
                        dram: sum_counters(
                            report,
                            slot.cores.iter().map(|c| format!("core{c}.steer.dram")),
                        ),
                    },
                    latency: merged_latency(report, &slot.cores),
                    pool: slot.has_pool.then(|| PoolAgg {
                        recycled: sum_counters(
                            report,
                            slot.queues.clone().map(|q| format!("pool.q{q}.recycled")),
                        ),
                        starved: sum_counters(
                            report,
                            slot.queues.clone().map(|q| format!("pool.q{q}.starved")),
                        ),
                        spilled: sum_counters(
                            report,
                            slot.queues.clone().map(|q| format!("pool.q{q}.spilled")),
                        ),
                    }),
                    fd: report
                        .metrics
                        .counters()
                        .any(|(k, _)| k.starts_with("fd."))
                        .then(|| FdMix {
                            perfect: sum_counters(
                                report,
                                slot.queues.clone().map(|q| format!("fd.q{q}.perfect")),
                            ),
                            atr: sum_counters(
                                report,
                                slot.queues.clone().map(|q| format!("fd.q{q}.atr")),
                            ),
                            collision: sum_counters(
                                report,
                                slot.queues.clone().map(|q| format!("fd.q{q}.collision")),
                            ),
                            rss: sum_counters(
                                report,
                                slot.queues.clone().map(|q| format!("fd.q{q}.rss")),
                            ),
                            mis_steered: sum_counters(
                                report,
                                slot.queues.clone().map(|q| format!("fd.q{q}.mis")),
                            ),
                        }),
                })
                .collect();
            CellFold::Mixed(MixedFold {
                rx_packets: report.totals.rx_packets,
                rx_drops: report.totals.rx_drops,
                completed: report.totals.completed_packets,
                tenants,
            })
        } else {
            let tenant = cell - 1;
            CellFold::Solo {
                tenant,
                latency: merged_latency(report, &self.tenants[tenant].cores),
            }
        }
    }

    /// Merges one fold into the running aggregates. Order-independent:
    /// every fold fills its own slot.
    ///
    /// # Panics
    ///
    /// Panics if the fold's slot was already filled (a cell folded twice)
    /// or a solo fold names an out-of-range tenant.
    pub fn fold(&mut self, fold: CellFold) {
        match fold {
            CellFold::Mixed(m) => {
                assert!(self.totals.is_none(), "mixed cell folded twice");
                assert_eq!(m.tenants.len(), self.tenants.len());
                self.totals = Some((m.rx_packets, m.rx_drops, m.completed));
                for (slot, t) in self.tenants.iter_mut().zip(m.tenants) {
                    slot.mixed = Some(t);
                }
            }
            CellFold::Solo { tenant, latency } => {
                let slot = &mut self.tenants[tenant];
                assert!(
                    slot.solo_latency.is_none(),
                    "solo cell of tenant {tenant} folded twice"
                );
                slot.solo_latency = Some(latency);
            }
        }
    }

    /// Materialises the report: computes interference and SLO outcomes
    /// from the folded aggregates.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first cell that was never folded.
    pub fn finish(self) -> Result<ScenarioReport, String> {
        let (rx_packets, rx_drops, completed) = self
            .totals
            .ok_or_else(|| format!("scenario '{}': mixed cell never folded", self.scenario))?;
        let duration_s = self.duration_ns as f64 * 1e-9;
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for slot in self.tenants {
            let mixed = slot.mixed.expect("filled together with totals");
            let solo_latency = slot.solo_latency.ok_or_else(|| {
                format!(
                    "scenario '{}': solo cell of tenant '{}' never folded",
                    self.scenario, slot.name
                )
            })?;
            let interference = match (mixed.latency, solo_latency) {
                (Some(m), Some(s)) => Some(Interference {
                    p50_delta_ns: m.p50_ns as i64 - s.p50_ns as i64,
                    p99_delta_ns: m.p99_ns as i64 - s.p99_ns as i64,
                    p99_ratio: if s.p99_ns > 0 {
                        m.p99_ns as f64 / s.p99_ns as f64
                    } else {
                        f64::NAN
                    },
                }),
                _ => None,
            };
            let offered = mixed.rx_packets + mixed.rx_drops;
            let drop_rate = if offered == 0 {
                0.0
            } else {
                mixed.rx_drops as f64 / offered as f64
            };
            // SLO bounds are asserted against the *mixed* run — the whole
            // point of an objective is surviving the neighbors.
            let slo = slot.slo.map(|s| {
                let actual_p99_ns = mixed.latency.map(|l| l.p99_ns);
                let mut violations = Vec::new();
                if let Some(bound) = s.max_p99_ns {
                    match actual_p99_ns {
                        Some(p99) if p99 > bound => {
                            violations.push(format!("mixed p99 {p99}ns exceeds bound {bound}ns"));
                        }
                        None => violations
                            .push(format!("no completed packets to check p99 bound {bound}ns")),
                        _ => {}
                    }
                }
                if let Some(bound) = s.max_drop_rate {
                    if drop_rate > bound {
                        violations.push(format!(
                            "mixed drop rate {drop_rate:.6} exceeds bound {bound:.6}"
                        ));
                    }
                }
                SloOutcome {
                    max_p99_ns: s.max_p99_ns,
                    max_drop_rate: s.max_drop_rate,
                    actual_p99_ns,
                    actual_drop_rate: drop_rate,
                    violations,
                }
            });
            tenants.push(TenantReport {
                name: slot.name,
                nf: slot.nf,
                cores: slot.cores,
                rx_packets: mixed.rx_packets,
                rx_drops: mixed.rx_drops,
                drop_rate,
                completed: mixed.completed,
                throughput_gbps: mixed.completed as f64 * f64::from(slot.packet_len) * 8.0
                    / duration_s
                    / 1e9,
                mlc_wb: mixed.mlc_wb,
                steer: mixed.steer,
                latency: mixed.latency,
                solo_latency,
                interference,
                policy: slot.policy,
                slo,
                pool: mixed.pool,
                fd: mixed.fd,
            });
        }
        Ok(ScenarioReport {
            scenario: self.scenario,
            description: self.description,
            policy: self.policy,
            root_seed: self.root_seed,
            duration_ns: self.duration_ns,
            rx_packets,
            rx_drops,
            completed,
            tenants,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant() -> TenantReport {
        TenantReport {
            name: "t0".into(),
            nf: "TouchDrop",
            cores: vec![0, 1],
            rx_packets: 100,
            rx_drops: 4,
            drop_rate: 4.0 / 104.0,
            completed: 100,
            throughput_gbps: 9.5,
            mlc_wb: 42,
            steer: SteerMix {
                llc: 10,
                mlc: 20,
                dram: 30,
            },
            latency: Some(LatencyStats {
                count: 100,
                mean_ns: 1500.0,
                p50_ns: 1023,
                p90_ns: 2047,
                p99_ns: 4095,
                max_ns: 5000,
            }),
            solo_latency: None,
            interference: None,
            policy: None,
            slo: None,
            pool: None,
            fd: None,
        }
    }

    #[test]
    fn json_has_stable_shape_and_null_for_missing_summaries() {
        let r = ScenarioReport {
            scenario: "demo".into(),
            description: "a demo".into(),
            policy: "IDIO",
            root_seed: 0xD10,
            duration_ns: 400_000,
            rx_packets: 100,
            rx_drops: 4,
            completed: 100,
            tenants: vec![tenant()],
        };
        let json = r.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"scenario\": \"demo\""));
        assert!(json.contains("\"steer\": {\"llc\": 10, \"mlc\": 20, \"dram\": 30}"));
        assert!(json.contains("\"solo_latency\": null"));
        assert!(json.contains("\"interference\": null"));
        assert!(json.contains("\"p99_ns\": 4095"));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn policy_and_slo_render_only_when_present() {
        let plain = tenant().to_json("");
        assert!(!plain.contains("\"policy\""));
        assert!(!plain.contains("\"slo\""));

        let mut t = tenant();
        t.policy = Some("DDIO".into());
        t.slo = Some(SloOutcome {
            max_p99_ns: Some(10_000),
            max_drop_rate: None,
            actual_p99_ns: Some(4095),
            actual_drop_rate: 0.0,
            violations: Vec::new(),
        });
        let json = t.to_json("");
        assert!(json.contains("\"policy\": \"DDIO\""));
        assert!(json.contains("\"slo\": {\"pass\": true"));
        assert!(json.contains("\"max_p99_ns\": 10000"));
        assert!(json.contains("\"max_drop_rate\": null"));
        assert!(json.contains("\"violations\": []"));
    }

    #[test]
    fn pool_renders_only_when_present() {
        let plain = tenant().to_json("");
        assert!(!plain.contains("\"pool\""));

        let mut t = tenant();
        t.pool = Some(PoolAgg {
            recycled: 90,
            starved: 3,
            spilled: 0,
        });
        let json = t.to_json("");
        assert!(json.contains("\"pool\": {\"recycled\": 90, \"starved\": 3, \"spilled\": 0}"));
    }

    #[test]
    fn slo_violations_are_collected_per_tenant() {
        let mut t = tenant();
        t.slo = Some(SloOutcome {
            max_p99_ns: Some(1000),
            max_drop_rate: Some(0.01),
            actual_p99_ns: Some(4095),
            actual_drop_rate: 0.5,
            violations: vec!["p99 too high".into(), "drop rate too high".into()],
        });
        let r = ScenarioReport {
            scenario: "demo".into(),
            description: "a demo".into(),
            policy: "IDIO",
            root_seed: 1,
            duration_ns: 1,
            rx_packets: 0,
            rx_drops: 0,
            completed: 0,
            tenants: vec![tenant(), t],
        };
        let v = r.slo_violations();
        assert_eq!(v.len(), 2);
        assert!(v[0].contains("tenant 't0'"));
        assert!(r.to_json().contains("\"pass\": false"));
    }

    #[test]
    fn non_finite_ratio_renders_as_null() {
        let i = Interference {
            p50_delta_ns: 0,
            p99_delta_ns: 0,
            p99_ratio: f64::NAN,
        };
        assert!(i.to_json().contains("\"p99_ratio\": null"));
    }
}
