//! The scenario runner: mixed + solo cells sharded across the sweep pool.
//!
//! A scenario with `N` tenants expands to `N + 1` [`SweepCell`]s — one
//! mixed run labelled `scenario/<name>/mixed` and one solo run per tenant
//! labelled `scenario/<name>/solo/<tenant>` — executed by
//! [`idio_core::sweep::run_cells_map`]. Labels are stable, so every cell's
//! seed (and therefore the whole report) is independent of the worker
//! count.
//!
//! The report is assembled through the *streaming* path: each cell is
//! reduced to a [`crate::report::CellFold`] on the worker that ran it and
//! its full [`idio_core::report::RunReport`] is dropped right there, so a
//! 200-tenant scenario (201 cells, each with per-core histograms) peaks at
//! `jobs` live reports plus O(tenants) of folded aggregates — not
//! O(cells × histograms).

use idio_core::sweep::{run_cells_map, SweepCell, SweepOptions};

use crate::report::{ScenarioReport, ScenarioReportBuilder};
use crate::spec::Scenario;

/// The sweep cells of `scenario`, in the fixed order the report builder
/// expects: the mixed cell first, then one solo cell per tenant in
/// declaration order.
pub fn scenario_cells(scenario: &Scenario) -> Vec<SweepCell> {
    let mut cells = vec![SweepCell::new(
        format!("scenario/{}/mixed", scenario.name),
        scenario.mixed_config(),
    )];
    for (i, t) in scenario.tenants.iter().enumerate() {
        cells.push(SweepCell::new(
            format!("scenario/{}/solo/{}", scenario.name, t.name),
            scenario.solo_config(i),
        ));
    }
    cells
}

/// Runs `scenario` under `opts` and assembles the per-tenant report.
///
/// The result is a pure function of `(scenario, opts.root_seed)`:
/// byte-identical JSON at any `opts.jobs`.
///
/// # Errors
///
/// Returns the validation message when the scenario is malformed; the
/// simulation itself cannot fail.
pub fn run_scenario(scenario: &Scenario, opts: &SweepOptions) -> Result<ScenarioReport, String> {
    scenario.validate()?;
    let mut builder = ScenarioReportBuilder::new(scenario, opts.root_seed);
    let cells = scenario_cells(scenario);
    debug_assert_eq!(cells.len(), builder.num_cells());
    // Reduce on the workers (dropping each RunReport as soon as its cell
    // finishes), then fold the per-cell aggregates on this thread.
    let folds = run_cells_map(cells, opts, |i, outcome| builder.reduce(i, &outcome.report));
    for fold in folds {
        builder.fold(fold);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_core::config::FlowSteering;
    use idio_core::net::gen::TrafficPattern;
    use idio_core::policy::SteeringPolicy;
    use idio_core::stack::nf::NfKind;
    use idio_engine::time::{Duration, SimTime};

    use crate::spec::TenantDef;

    fn tiny() -> Scenario {
        Scenario {
            name: "tiny".into(),
            description: "runner test".into(),
            policy: SteeringPolicy::Idio,
            steering: FlowSteering::Perfect,
            duration: SimTime::from_us(200),
            drain_grace: Duration::from_us(200),
            perfect_filters: None,
            atr_lifetime: None,
            pool_idle_flush: None,
            tenants: vec![
                TenantDef::new(
                    "a",
                    NfKind::TouchDrop,
                    vec![0, 1],
                    4,
                    5000,
                    TrafficPattern::Steady { rate_gbps: 10.0 },
                    1514,
                ),
                TenantDef::new(
                    "b",
                    NfKind::TouchDrop,
                    vec![2],
                    2,
                    6000,
                    TrafficPattern::Steady { rate_gbps: 8.0 },
                    512,
                ),
            ],
        }
    }

    #[test]
    fn tenant_attribution_adds_up_to_run_totals() {
        let r = run_scenario(&tiny(), &SweepOptions::serial()).unwrap();
        assert_eq!(r.tenants.len(), 2);
        let rx: u64 = r.tenants.iter().map(|t| t.rx_packets).sum();
        let done: u64 = r.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(rx, r.rx_packets, "per-queue rx folds cover every queue");
        assert_eq!(done, r.completed, "per-core completions cover every core");
        for t in &r.tenants {
            assert!(t.completed > 0, "tenant '{}' made progress", t.name);
            assert!(t.throughput_gbps > 0.0);
            let lat = t.latency.expect("completed packets have latency");
            assert_eq!(lat.count, t.completed);
            assert!(lat.p50_ns <= lat.p90_ns && lat.p90_ns <= lat.p99_ns);
            assert!(lat.p99_ns <= lat.max_ns.next_power_of_two().max(1) * 2);
            let steer_total = t.steer.llc + t.steer.mlc + t.steer.dram;
            assert!(steer_total > 0, "tenant '{}' received DMA lines", t.name);
            t.interference.expect("both runs completed packets");
            t.solo_latency.expect("solo run completed packets");
        }
    }

    #[test]
    fn report_is_independent_of_worker_count() {
        let serial = run_scenario(&tiny(), &SweepOptions::serial()).unwrap();
        let parallel = run_scenario(
            &tiny(),
            &SweepOptions {
                jobs: 4,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    /// Regression: a tenant that never completes a packet must yield a
    /// deterministic "no data" SLO outcome — no p99 read off an empty
    /// recorder, no NaN drop rate — and the report must stay
    /// byte-identical across worker counts.
    #[test]
    fn slo_on_tenant_with_no_completed_packets_reports_no_data() {
        use crate::spec::SloSpec;
        let mut sc = tiny();
        // An empty replay: every packet of the tenant is lost before the
        // horizon, so zero arrivals, zero completions.
        sc.tenants[1] = sc.tenants[1]
            .clone()
            .with_replay(Vec::new())
            .with_slo(SloSpec {
                max_p99_ns: Some(1_000_000),
                max_drop_rate: Some(0.01),
            });
        let r = run_scenario(&sc, &SweepOptions::serial()).unwrap();
        let t = &r.tenants[1];
        assert_eq!(t.completed, 0);
        assert!(t.latency.is_none());
        assert_eq!(t.drop_rate, 0.0, "idle tenant must not divide by zero");
        let slo = t.slo.as_ref().expect("slo configured");
        assert!(!slo.pass(), "no data cannot satisfy a p99 bound");
        assert_eq!(slo.actual_p99_ns, None);
        assert_eq!(slo.actual_drop_rate, 0.0);
        assert_eq!(slo.violations.len(), 1, "{:?}", slo.violations);
        assert!(
            slo.violations[0].contains("no completed packets"),
            "{:?}",
            slo.violations
        );
        let parallel = run_scenario(
            &sc,
            &SweepOptions {
                jobs: 2,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.to_json(), parallel.to_json());
    }

    #[test]
    fn invalid_scenario_is_rejected_before_running() {
        let mut sc = tiny();
        sc.tenants[1].cores = vec![0];
        assert!(run_scenario(&sc, &SweepOptions::serial()).is_err());
    }

    #[test]
    fn builder_rejects_missing_folds() {
        let sc = tiny();
        let b = ScenarioReportBuilder::new(&sc, 1);
        assert_eq!(b.num_cells(), 3);
        // Nothing folded at all: the mixed cell is reported missing.
        let err = b.finish().unwrap_err();
        assert!(err.contains("mixed cell never folded"), "{err}");
    }
}
