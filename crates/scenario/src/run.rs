//! The scenario runner: mixed + solo cells on the sweep worker pool.
//!
//! A scenario with `N` tenants expands to `N + 1` [`SweepCell`]s — one
//! mixed run labelled `scenario/<name>/mixed` and one solo run per tenant
//! labelled `scenario/<name>/solo/<tenant>` — executed by
//! [`idio_core::sweep::run_cells`]. Labels are stable, so every cell's
//! seed (and therefore the whole report) is independent of the worker
//! count.

use idio_core::report::RunReport;
use idio_core::sweep::{run_cells, SweepCell, SweepOptions};
use idio_engine::telemetry::Histogram;

use crate::report::{
    Interference, LatencyStats, ScenarioReport, SloOutcome, SteerMix, TenantReport,
};
use crate::spec::Scenario;

/// Merges the `core{i}.pkt_latency_ns` histograms of `cores` out of a
/// run's final metrics snapshot.
fn merged_latency(report: &RunReport, cores: &[u16]) -> Option<LatencyStats> {
    let mut h = Histogram::new();
    for &c in cores {
        if let Some(hc) = report.metrics.histogram(&format!("core{c}.pkt_latency_ns")) {
            h.merge(hc);
        }
    }
    if h.count() == 0 {
        return None;
    }
    Some(LatencyStats {
        count: h.count(),
        mean_ns: h.mean(),
        p50_ns: h.percentile(50.0).expect("non-empty"),
        p90_ns: h.percentile(90.0).expect("non-empty"),
        p99_ns: h.percentile(99.0).expect("non-empty"),
        max_ns: h.max(),
    })
}

fn sum_counters(report: &RunReport, names: impl Iterator<Item = String>) -> u64 {
    names.map(|n| report.metrics.counter(&n)).sum()
}

/// Runs `scenario` under `opts` and assembles the per-tenant report.
///
/// The result is a pure function of `(scenario, opts.root_seed)`:
/// byte-identical JSON at any `opts.jobs`.
///
/// # Errors
///
/// Returns the validation message when the scenario is malformed; the
/// simulation itself cannot fail.
pub fn run_scenario(scenario: &Scenario, opts: &SweepOptions) -> Result<ScenarioReport, String> {
    scenario.validate()?;

    let mut cells = vec![SweepCell::new(
        format!("scenario/{}/mixed", scenario.name),
        scenario.mixed_config(),
    )];
    for (i, t) in scenario.tenants.iter().enumerate() {
        cells.push(SweepCell::new(
            format!("scenario/{}/solo/{}", scenario.name, t.name),
            scenario.solo_config(i),
        ));
    }
    let outcomes = run_cells(cells, opts);
    let mixed = &outcomes[0].report;
    let duration_s = scenario.duration.as_ns() as f64 * 1e-9;

    // Queue index == workload index (one ring per NF instance), so a
    // tenant's queues in the mixed run are its workload indices there.
    let mut next_workload = 0usize;
    let mut tenants = Vec::with_capacity(scenario.tenants.len());
    for (i, t) in scenario.tenants.iter().enumerate() {
        let queues: Vec<usize> = (next_workload..next_workload + t.cores.len()).collect();
        next_workload += t.cores.len();

        let rx_packets = sum_counters(mixed, queues.iter().map(|q| format!("queue{q}.rx.packets")));
        let rx_drops = sum_counters(mixed, queues.iter().map(|q| format!("queue{q}.rx.drops")));
        let offered = rx_packets + rx_drops;
        let completed = sum_counters(
            mixed,
            t.cores.iter().map(|c| format!("core{c}.packets.completed")),
        );
        let steer = SteerMix {
            llc: sum_counters(mixed, t.cores.iter().map(|c| format!("core{c}.steer.llc"))),
            mlc: sum_counters(mixed, t.cores.iter().map(|c| format!("core{c}.steer.mlc"))),
            dram: sum_counters(mixed, t.cores.iter().map(|c| format!("core{c}.steer.dram"))),
        };
        let mlc_wb = t
            .cores
            .iter()
            .map(|&c| mixed.hierarchy.core[c as usize].mlc_wb.get())
            .sum();

        let latency = merged_latency(mixed, &t.cores);
        let solo_latency = merged_latency(&outcomes[i + 1].report, &t.cores);
        let interference = match (latency, solo_latency) {
            (Some(m), Some(s)) => Some(Interference {
                p50_delta_ns: m.p50_ns as i64 - s.p50_ns as i64,
                p99_delta_ns: m.p99_ns as i64 - s.p99_ns as i64,
                p99_ratio: if s.p99_ns > 0 {
                    m.p99_ns as f64 / s.p99_ns as f64
                } else {
                    f64::NAN
                },
            }),
            _ => None,
        };

        let drop_rate = if offered == 0 {
            0.0
        } else {
            rx_drops as f64 / offered as f64
        };
        // SLO bounds are asserted against the *mixed* run — the whole
        // point of an objective is surviving the neighbors.
        let slo = t.slo.filter(|s| s.is_bounded()).map(|s| {
            let actual_p99_ns = latency.map(|l| l.p99_ns);
            let mut violations = Vec::new();
            if let Some(bound) = s.max_p99_ns {
                match actual_p99_ns {
                    Some(p99) if p99 > bound => {
                        violations.push(format!("mixed p99 {p99}ns exceeds bound {bound}ns"));
                    }
                    None => violations
                        .push(format!("no completed packets to check p99 bound {bound}ns")),
                    _ => {}
                }
            }
            if let Some(bound) = s.max_drop_rate {
                if drop_rate > bound {
                    violations.push(format!(
                        "mixed drop rate {drop_rate:.6} exceeds bound {bound:.6}"
                    ));
                }
            }
            SloOutcome {
                max_p99_ns: s.max_p99_ns,
                max_drop_rate: s.max_drop_rate,
                actual_p99_ns,
                actual_drop_rate: drop_rate,
                violations,
            }
        });

        tenants.push(TenantReport {
            name: t.name.clone(),
            nf: t.nf.name(),
            cores: t.cores.clone(),
            rx_packets,
            rx_drops,
            drop_rate,
            completed,
            throughput_gbps: completed as f64 * f64::from(t.packet_len) * 8.0 / duration_s / 1e9,
            mlc_wb,
            steer,
            latency,
            solo_latency,
            interference,
            policy: t.policy.map(|p| p.label()),
            slo,
        });
    }

    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        policy: scenario.policy.label(),
        root_seed: opts.root_seed,
        duration_ns: scenario.duration.as_ns(),
        rx_packets: mixed.totals.rx_packets,
        rx_drops: mixed.totals.rx_drops,
        completed: mixed.totals.completed_packets,
        tenants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_core::config::FlowSteering;
    use idio_core::net::gen::TrafficPattern;
    use idio_core::policy::SteeringPolicy;
    use idio_core::stack::nf::NfKind;
    use idio_engine::time::{Duration, SimTime};

    use crate::spec::TenantDef;

    fn tiny() -> Scenario {
        Scenario {
            name: "tiny".into(),
            description: "runner test".into(),
            policy: SteeringPolicy::Idio,
            steering: FlowSteering::Perfect,
            duration: SimTime::from_us(200),
            drain_grace: Duration::from_us(200),
            tenants: vec![
                TenantDef::new(
                    "a",
                    NfKind::TouchDrop,
                    vec![0, 1],
                    4,
                    5000,
                    TrafficPattern::Steady { rate_gbps: 10.0 },
                    1514,
                ),
                TenantDef::new(
                    "b",
                    NfKind::TouchDrop,
                    vec![2],
                    2,
                    6000,
                    TrafficPattern::Steady { rate_gbps: 8.0 },
                    512,
                ),
            ],
        }
    }

    #[test]
    fn tenant_attribution_adds_up_to_run_totals() {
        let r = run_scenario(&tiny(), &SweepOptions::serial()).unwrap();
        assert_eq!(r.tenants.len(), 2);
        let rx: u64 = r.tenants.iter().map(|t| t.rx_packets).sum();
        let done: u64 = r.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(rx, r.rx_packets, "per-queue rx folds cover every queue");
        assert_eq!(done, r.completed, "per-core completions cover every core");
        for t in &r.tenants {
            assert!(t.completed > 0, "tenant '{}' made progress", t.name);
            assert!(t.throughput_gbps > 0.0);
            let lat = t.latency.expect("completed packets have latency");
            assert_eq!(lat.count, t.completed);
            assert!(lat.p50_ns <= lat.p90_ns && lat.p90_ns <= lat.p99_ns);
            assert!(lat.p99_ns <= lat.max_ns.next_power_of_two().max(1) * 2);
            let steer_total = t.steer.llc + t.steer.mlc + t.steer.dram;
            assert!(steer_total > 0, "tenant '{}' received DMA lines", t.name);
            t.interference.expect("both runs completed packets");
            t.solo_latency.expect("solo run completed packets");
        }
    }

    #[test]
    fn report_is_independent_of_worker_count() {
        let serial = run_scenario(&tiny(), &SweepOptions::serial()).unwrap();
        let parallel = run_scenario(
            &tiny(),
            &SweepOptions {
                jobs: 4,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn invalid_scenario_is_rejected_before_running() {
        let mut sc = tiny();
        sc.tenants[1].cores = vec![0];
        assert!(run_scenario(&sc, &SweepOptions::serial()).is_err());
    }
}
