//! Scenario and tenant specifications, and their mapping onto
//! [`SystemConfig`].
//!
//! A [`Scenario`] is pure data: it can be validated, listed, and turned
//! into system configurations without running anything. The mapping
//! produces one *mixed* configuration (all tenants together) and one
//! *solo* configuration per tenant (the tenant alone on its own cores,
//! same cache hierarchy), which is what makes the interference report an
//! apples-to-apples comparison.

use idio_core::cache::addr::CoreId;
use idio_core::config::{FlowSteering, SystemConfig, TenantSpec, WorkloadSpec};
use idio_core::net::gen::{Arrival, TrafficPattern};
use idio_core::net::packet::Dscp;
use idio_core::policy::{PolicySpec, SteeringPolicy};
use idio_core::pool::PoolSpec;
use idio_core::stack::nf::NfKind;
use idio_engine::time::{Duration, SimTime};

/// Per-tenant service-level objectives, asserted against the *mixed* run.
///
/// Bounds are optional; a tenant with no `SloSpec` (or with all bounds
/// `None`) is never flagged. Violations appear in the tenant's report and
/// make the `scenario` CLI exit non-zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloSpec {
    /// Upper bound on the tenant's mixed-run p99 packet latency (ns).
    pub max_p99_ns: Option<u64>,
    /// Upper bound on the tenant's mixed-run drop rate (fraction of
    /// offered packets dropped at full rings).
    pub max_drop_rate: Option<f64>,
}

impl SloSpec {
    /// Whether any bound is actually set.
    pub fn is_bounded(&self) -> bool {
        self.max_p99_ns.is_some() || self.max_drop_rate.is_some()
    }
}

/// One tenant of a scenario: a traffic source bound to an NF class and a
/// group of cores.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantDef {
    /// Stable tenant name (unique within the scenario; report key).
    pub name: String,
    /// The network function every one of the tenant's cores runs.
    pub nf: NfKind,
    /// The cores (and therefore NIC queues) the tenant owns.
    pub cores: Vec<u16>,
    /// Concurrently-active five-tuples the tenant's aggregate load is
    /// dealt over — up to 16M, derived on demand by a streaming flow set
    /// (memory stays O(1) in the flow count). The flow director spreads
    /// them round-robin across the cores. Ignored when `replay` is set
    /// (the trace brings its own flows).
    pub flows: u32,
    /// First UDP destination port of the synthetic flows (`base_port + i`
    /// for flow `i`); tenants with small flow counts must use disjoint
    /// ranges. Flow counts past the port range (and churning tenants)
    /// spill into per-tenant source addresses and cannot collide.
    pub base_port: u16,
    /// Flow lifetime: each active-flow slot retires its five-tuple and
    /// starts a fresh one after this long (staggered across slots), so
    /// the population turns over like a real connection table. `None` =
    /// fixed population.
    pub churn: Option<Duration>,
    /// Packets dealt to one flow per visit before rotating to the next
    /// (a packet train); 1 = plain round-robin.
    pub train: u32,
    /// Aggregate arrival pattern of the whole tenant.
    pub traffic: TrafficPattern,
    /// Frame length in bytes (all of the tenant's flows share it).
    pub packet_len: u16,
    /// DSCP marking — the application-class signal the NIC classifier
    /// reads (class 1 payloads go direct to DRAM under IDIO).
    pub dscp: Dscp,
    /// Recorded arrivals replayed instead of the analytic `traffic`
    /// pattern (see [`idio_core::net::trace`]).
    pub replay: Option<Vec<Arrival>>,
    /// Steering-policy override for the tenant's queues. `None` inherits
    /// the scenario-level [`Scenario::policy`]; a preset override equal to
    /// the scenario policy is behaviorally identical to inheriting it but
    /// labels the tenant explicitly in the report.
    pub policy: Option<PolicySpec>,
    /// Optional service-level objectives checked against the mixed run.
    pub slo: Option<SloSpec>,
    /// Mbuf-pool mode of every one of the tenant's queues. `None` keeps
    /// the legacy implicit DRAM-backed pool (no pool telemetry); an
    /// explicit spec turns on per-queue `pool.*` accounting and, for
    /// [`PoolSpec::Recycle`], the LLC-resident recycling pool.
    pub pool: Option<PoolSpec>,
}

impl TenantDef {
    /// A synthetic-traffic tenant with best-effort DSCP.
    pub fn new(
        name: impl Into<String>,
        nf: NfKind,
        cores: Vec<u16>,
        flows: u32,
        base_port: u16,
        traffic: TrafficPattern,
        packet_len: u16,
    ) -> Self {
        TenantDef {
            name: name.into(),
            nf,
            cores,
            flows,
            base_port,
            churn: None,
            train: 1,
            traffic,
            packet_len,
            dscp: Dscp::BEST_EFFORT,
            replay: None,
            policy: None,
            slo: None,
            pool: None,
        }
    }

    /// Returns the tenant with a different DSCP marking.
    pub fn with_dscp(mut self, dscp: Dscp) -> Self {
        self.dscp = dscp;
        self
    }

    /// Returns the tenant with flow churn: each active flow lives
    /// `lifetime`, then its slot starts a fresh five-tuple.
    pub fn with_churn(mut self, lifetime: Duration) -> Self {
        self.churn = Some(lifetime);
        self
    }

    /// Returns the tenant dealing `train` consecutive packets per flow
    /// visit instead of rotating every packet.
    pub fn with_train(mut self, train: u32) -> Self {
        self.train = train;
        self
    }

    /// Returns the tenant replaying `arrivals` instead of its analytic
    /// traffic pattern.
    pub fn with_replay(mut self, arrivals: Vec<Arrival>) -> Self {
        self.replay = Some(arrivals);
        self
    }

    /// Returns the tenant pinned to its own steering policy instead of
    /// inheriting the scenario-level one.
    pub fn with_policy(mut self, policy: impl Into<PolicySpec>) -> Self {
        self.policy = Some(policy.into());
        self
    }

    /// Returns the tenant with service-level objectives attached.
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Returns the tenant with an explicit mbuf-pool mode on its queues.
    pub fn with_pool(mut self, pool: PoolSpec) -> Self {
        self.pool = Some(pool);
        self
    }
}

/// A named, declarative mixed-workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable scenario name (label prefix of every cell it spawns).
    pub name: String,
    /// One-line human description (shown by `scenario --list`).
    pub description: String,
    /// The steering policy the run is evaluated under.
    pub policy: SteeringPolicy,
    /// Flow Director operating mode.
    pub steering: FlowSteering,
    /// Traffic generation horizon.
    pub duration: SimTime,
    /// Extra drain time after traffic stops.
    pub drain_grace: Duration,
    /// Flow Director perfect-match filter capacity. `None` keeps the
    /// hardware default (~8K, Sec. II-C); small values put the table
    /// under pressure so steering degrades perfect -> ATR -> RSS.
    pub perfect_filters: Option<usize>,
    /// ATR filter-table entry lifetime (entries age out lazily and the
    /// flow falls back to RSS until re-learned). `None` = no aging.
    pub atr_lifetime: Option<Duration>,
    /// Idle window after which a recycle pool self-invalidates and
    /// releases its LLC footprint. `None` = pools keep their footprint.
    pub pool_idle_flush: Option<Duration>,
    /// The tenants, in declaration (report) order.
    pub tenants: Vec<TenantDef>,
}

impl Scenario {
    /// Number of cores the scenario requires (highest owned core + 1).
    pub fn num_cores(&self) -> usize {
        self.tenants
            .iter()
            .flat_map(|t| t.cores.iter())
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(1)
    }

    /// Table I defaults sized for this scenario, with no workloads yet.
    fn base_config(&self) -> SystemConfig {
        let placeholder = self
            .tenants
            .first()
            .map(|t| t.traffic)
            .unwrap_or(TrafficPattern::Steady { rate_gbps: 1.0 });
        let mut cfg = SystemConfig::touchdrop_scenario(self.num_cores(), placeholder);
        cfg.policy = self.policy;
        cfg.steering = self.steering;
        cfg.duration = self.duration;
        cfg.drain_grace = self.drain_grace;
        if let Some(entries) = self.perfect_filters {
            cfg.perfect_filter_entries = entries;
        }
        cfg.atr_lifetime = self.atr_lifetime;
        cfg.pool_idle_flush = self.pool_idle_flush;
        cfg.workloads.clear();
        cfg
    }

    fn push_tenant(cfg: &mut SystemConfig, t: &TenantDef) {
        let first = cfg.workloads.len();
        for &c in &t.cores {
            cfg.workloads.push(WorkloadSpec {
                core: CoreId::new(c),
                kind: t.nf,
                traffic: t.traffic,
                packet_len: t.packet_len,
                dscp: t.dscp,
                pool: t.pool,
            });
        }
        cfg.tenants.push(TenantSpec {
            name: t.name.clone(),
            workloads: (first..cfg.workloads.len()).collect(),
            flows: t.flows,
            base_port: t.base_port,
            churn: t.churn,
            train: t.train,
            traffic: t.traffic,
            packet_len: t.packet_len,
            dscp: t.dscp,
            replay: t.replay.clone(),
            policy: t.policy,
        });
    }

    /// The mixed configuration: all tenants running together.
    pub fn mixed_config(&self) -> SystemConfig {
        let mut cfg = self.base_config();
        for t in &self.tenants {
            Scenario::push_tenant(&mut cfg, t);
        }
        cfg
    }

    /// The solo configuration of tenant `i`: only its workloads, on their
    /// original cores, with the *same* core count and cache hierarchy as
    /// the mixed run — so solo vs. mixed latency isolates contention, not
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn solo_config(&self, i: usize) -> SystemConfig {
        let mut cfg = self.base_config();
        Scenario::push_tenant(&mut cfg, &self.tenants[i]);
        // Keep the hierarchy sized for the full scenario even though only
        // one tenant's cores are active.
        cfg.hierarchy.num_cores = self.num_cores();
        cfg
    }

    /// Validates the scenario: a non-empty name, at least one tenant, no
    /// core owned twice, and every derived configuration (mixed and each
    /// solo) valid under [`SystemConfig::validate`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario with empty name".into());
        }
        if self.tenants.is_empty() {
            return Err(format!("scenario '{}' has no tenants", self.name));
        }
        let mut owned = std::collections::HashSet::new();
        for t in &self.tenants {
            if t.cores.is_empty() {
                return Err(format!("tenant '{}' owns no cores", t.name));
            }
            for &c in &t.cores {
                if !owned.insert(c) {
                    return Err(format!("core {c} is owned by two tenants"));
                }
            }
        }
        self.mixed_config()
            .validate()
            .map_err(|e| format!("scenario '{}' (mixed): {e}", self.name))?;
        for (i, t) in self.tenants.iter().enumerate() {
            self.solo_config(i)
                .validate()
                .map_err(|e| format!("scenario '{}' (solo '{}'): {e}", self.name, t.name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> Scenario {
        Scenario {
            name: "test".into(),
            description: "two tenants".into(),
            policy: SteeringPolicy::Idio,
            steering: FlowSteering::Perfect,
            duration: SimTime::from_us(100),
            drain_grace: Duration::from_us(100),
            perfect_filters: None,
            atr_lifetime: None,
            pool_idle_flush: None,
            tenants: vec![
                TenantDef::new(
                    "a",
                    NfKind::TouchDrop,
                    vec![0, 1],
                    6,
                    5000,
                    TrafficPattern::Steady { rate_gbps: 10.0 },
                    1514,
                ),
                TenantDef::new(
                    "b",
                    NfKind::L2FwdPayloadDrop,
                    vec![2],
                    3,
                    6000,
                    TrafficPattern::Steady { rate_gbps: 20.0 },
                    1024,
                )
                .with_dscp(Dscp::CLASS1_DEFAULT),
            ],
        }
    }

    #[test]
    fn mixed_config_maps_tenants_to_contiguous_workloads() {
        let sc = two_tenants();
        let cfg = sc.mixed_config();
        assert!(sc.validate().is_ok());
        assert_eq!(cfg.workloads.len(), 3);
        assert_eq!(cfg.tenants.len(), 2);
        assert_eq!(cfg.tenants[0].workloads, vec![0, 1]);
        assert_eq!(cfg.tenants[1].workloads, vec![2]);
        assert_eq!(cfg.workloads[2].kind, NfKind::L2FwdPayloadDrop);
        assert_eq!(cfg.workloads[2].dscp, Dscp::CLASS1_DEFAULT);
        assert_eq!(cfg.num_cores(), 3);
    }

    #[test]
    fn solo_config_keeps_original_cores_and_hierarchy_size() {
        let sc = two_tenants();
        let cfg = sc.solo_config(1);
        assert_eq!(cfg.workloads.len(), 1);
        assert_eq!(cfg.workloads[0].core, CoreId::new(2));
        assert_eq!(cfg.tenants[0].workloads, vec![0]);
        // Same core count as the mixed run: contention-only comparison.
        assert_eq!(cfg.hierarchy.num_cores, 3);
    }

    #[test]
    fn double_owned_core_rejected() {
        let mut sc = two_tenants();
        sc.tenants[1].cores = vec![1];
        assert!(sc.validate().unwrap_err().contains("owned by two tenants"));
    }

    #[test]
    fn overlapping_ports_rejected_via_config_validation() {
        let mut sc = two_tenants();
        sc.tenants[1].base_port = 5002;
        assert!(sc.validate().unwrap_err().contains("overlapping"));
    }
}
