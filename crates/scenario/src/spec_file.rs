//! Scenario files: a dependency-free TOML-subset parser and the canonical
//! serializer.
//!
//! Scenarios are defined in files so they can be added, tuned and shared
//! without recompiling (the same reason PR 1 replaced unavailable crates
//! with in-repo substrates, this module hand-rolls the parser instead of
//! depending on a TOML crate). The accepted grammar is a strict subset of
//! TOML, line-oriented:
//!
//! * `key = value` pairs; keys are bare (`[A-Za-z0-9_-]+`).
//! * Values: `"strings"` (escapes `\\ \" \n \t \r \uXXXX`), integers
//!   (decimal or `0x` hex, `_` separators), floats, booleans, and
//!   single-line arrays of integers or strings.
//! * `[[tenant]]` array-of-tables headers and one optional `[generate]`
//!   table (see [`crate::gen`]); no other tables, no inline tables, no
//!   dotted keys, no multi-line values.
//! * `#` comments.
//!
//! Time-valued keys (`duration`, `drain_grace`, `burst_period`,
//! `burst_gap`) accept a `_us`, `_ns` or `_ps` suffix — exactly one —
//! and the serializer picks `_ns` unless the value needs picosecond
//! precision (the simulator's clocks tick in picoseconds).
//!
//! Every error carries the 1-based **line and column** of the offending
//! token ([`SpecError`]), which the `scenario check` CLI renders as
//! `file.toml:line:col: message`.
//!
//! [`to_file_string`] renders a [`Scenario`] in canonical form such that
//! `parse_str(to_file_string(s)) == s` for any scenario without replay
//! tenants (replay arrivals are kept in sidecar trace files named
//! `traces/<tenant>.trace` next to the scenario file, written with
//! [`idio_core::net::trace::write_trace`]).

use std::fmt;
use std::path::Path;

use idio_core::cache::config::HierarchyConfig;
use idio_core::cache::set::WayMask;
use idio_core::config::FlowSteering;
use idio_core::net::gen::{BurstSpec, TrafficPattern, MAX_FLOW_SET_FLOWS};
use idio_core::net::packet::{Dscp, MIN_FRAME_BYTES};
use idio_core::net::trace::read_trace;
use idio_core::policy::{CatMode, PolicyCaps, PolicySpec, PrefetchMode, SteeringPolicy};
use idio_core::pool::PoolSpec;
use idio_core::stack::nf::{ChainStage, NfChain, NfKind, MAX_CHAIN_STAGES};
use idio_engine::time::{wire_time, Duration, SimTime};

use crate::gen::{AppClass, GenSpec, RateDist};
use crate::spec::{Scenario, SloSpec, TenantDef};

/// A parse or validation error anchored to a 1-based line and column of
/// the scenario file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line of the offending token (0 when the error has no
    /// position, e.g. the file could not be read at all).
    pub line: u32,
    /// 1-based column (in characters) of the offending token.
    pub col: u32,
    /// Human-readable description.
    pub msg: String,
}

impl SpecError {
    fn new(pos: Pos, msg: impl Into<String>) -> Self {
        SpecError {
            line: pos.0,
            col: pos.1,
            msg: msg.into(),
        }
    }

    fn no_pos(msg: impl Into<String>) -> Self {
        SpecError {
            line: 0,
            col: 0,
            msg: msg.into(),
        }
    }

    /// Renders the error prefixed with a file path, `path:line:col: msg`
    /// (or `path: msg` when the error has no position).
    pub fn at_path(&self, path: &str) -> String {
        if self.line == 0 {
            format!("{path}: {}", self.msg)
        } else {
            format!("{path}:{}:{}: {}", self.line, self.col, self.msg)
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.msg)
        } else {
            write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
        }
    }
}

impl std::error::Error for SpecError {}

/// (line, column), both 1-based.
type Pos = (u32, u32);

#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Int(i128),
    Float(f64),
    // No schema key takes a boolean today; the variant exists so
    // `flows = true` reports "expects an integer, found boolean" instead
    // of a lexer-level number error.
    Bool(#[allow(dead_code)] bool),
    Ints(Vec<(i128, Pos)>),
    Strs(Vec<(String, Pos)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Ints(_) => "integer array",
            Value::Strs(_) => "string array",
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    key: String,
    key_pos: Pos,
    val: Value,
    val_pos: Pos,
}

#[derive(Debug, Clone)]
struct Table {
    /// Position of the table header (`(1, 1)` for the implicit top-level
    /// table); anchor for "missing required key" errors.
    pos: Pos,
    entries: Vec<Entry>,
}

impl Table {
    fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

// ---------------------------------------------------------------------
// Lexing: source text → tables of positioned key/value entries.
// ---------------------------------------------------------------------

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

struct LineLexer {
    chars: Vec<char>,
    line: u32,
    i: usize,
}

impl LineLexer {
    fn pos(&self) -> Pos {
        (self.line, self.i as u32 + 1)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.i += 1;
        }
    }

    /// Whether the rest of the line is only whitespace or a comment.
    fn at_end(&mut self) -> bool {
        self.skip_ws();
        matches!(self.peek(), None | Some('#'))
    }

    fn bare_token(&mut self) -> (String, Pos) {
        let pos = self.pos();
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if is_bare_key_char(c) || c == '.' || c == '+' {
                s.push(c);
                self.i += 1;
            } else {
                break;
            }
        }
        (s, pos)
    }

    fn string(&mut self) -> Result<(String, Pos), SpecError> {
        let open = self.pos();
        debug_assert_eq!(self.peek(), Some('"'));
        self.i += 1;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(SpecError::new(open, "unterminated string"));
            };
            self.i += 1;
            match c {
                '"' => return Ok((s, open)),
                '\\' => {
                    let esc_pos = (self.line, self.i as u32);
                    let Some(e) = self.peek() else {
                        return Err(SpecError::new(open, "unterminated string"));
                    };
                    self.i += 1;
                    match e {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        'n' => s.push('\n'),
                        't' => s.push('\t'),
                        'r' => s.push('\r'),
                        'u' => {
                            let mut v = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err(SpecError::new(
                                        esc_pos,
                                        "\\u escape needs four hex digits",
                                    ));
                                };
                                self.i += 1;
                                v = v * 16 + h;
                            }
                            let Some(c) = char::from_u32(v) else {
                                return Err(SpecError::new(esc_pos, "invalid \\u escape"));
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(SpecError::new(
                                esc_pos,
                                format!("unknown escape '\\{other}'"),
                            ));
                        }
                    }
                }
                c => s.push(c),
            }
        }
    }

    fn scalar_token(&mut self) -> Result<(Value, Pos), SpecError> {
        let (tok, pos) = self.bare_token();
        if tok.is_empty() {
            let c = self
                .peek()
                .map_or("end of line".into(), |c| format!("'{c}'"));
            return Err(SpecError::new(
                self.pos(),
                format!("expected a value, found {c}"),
            ));
        }
        match tok.as_str() {
            "true" => return Ok((Value::Bool(true), pos)),
            "false" => return Ok((Value::Bool(false), pos)),
            _ => {}
        }
        let clean: String = tok.chars().filter(|&c| c != '_').collect();
        let (neg, body) = match clean.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, clean.as_str()),
        };
        if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            return i128::from_str_radix(hex, 16)
                .map(|v| (Value::Int(if neg { -v } else { v }), pos))
                .map_err(|_| SpecError::new(pos, format!("invalid number '{tok}'")));
        }
        if body.contains(['.', 'e', 'E']) {
            return clean
                .parse::<f64>()
                .map(|v| (Value::Float(v), pos))
                .map_err(|_| SpecError::new(pos, format!("invalid number '{tok}'")));
        }
        clean
            .parse::<i128>()
            .map(|v| (Value::Int(v), pos))
            .map_err(|_| SpecError::new(pos, format!("invalid number '{tok}'")))
    }

    fn value(&mut self) -> Result<(Value, Pos), SpecError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => self.string().map(|(s, p)| (Value::Str(s), p)),
            Some('[') => self.array(),
            Some('-') => {
                // A leading '-' is only valid on numbers; bare_token keeps
                // it because it is a bare-key char.
                self.scalar_token()
            }
            _ => self.scalar_token(),
        }
    }

    fn array(&mut self) -> Result<(Value, Pos), SpecError> {
        let open = self.pos();
        debug_assert_eq!(self.peek(), Some('['));
        self.i += 1;
        let mut ints: Vec<(i128, Pos)> = Vec::new();
        let mut strs: Vec<(String, Pos)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(SpecError::new(open, "unterminated array")),
                Some(']') => {
                    self.i += 1;
                    break;
                }
                Some(_) => {}
            }
            let (v, pos) = self.value()?;
            match v {
                Value::Int(i) if strs.is_empty() => ints.push((i, pos)),
                Value::Str(s) if ints.is_empty() => strs.push((s, pos)),
                Value::Int(_) | Value::Str(_) => {
                    return Err(SpecError::new(pos, "mixed array element types"));
                }
                other => {
                    return Err(SpecError::new(
                        pos,
                        format!(
                            "arrays may hold integers or strings, not {}",
                            other.type_name()
                        ),
                    ));
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.i += 1;
                }
                Some(']') => {}
                None => return Err(SpecError::new(open, "unterminated array")),
                Some(c) => {
                    return Err(SpecError::new(
                        self.pos(),
                        format!("expected ',' or ']' in array, found '{c}'"),
                    ));
                }
            }
        }
        if strs.is_empty() {
            Ok((Value::Ints(ints), open))
        } else {
            Ok((Value::Strs(strs), open))
        }
    }
}

#[derive(Debug)]
struct RawFile {
    top: Table,
    tenants: Vec<Table>,
    generate: Option<Table>,
}

fn lex(src: &str) -> Result<RawFile, SpecError> {
    let mut raw = RawFile {
        top: Table {
            pos: (1, 1),
            entries: Vec::new(),
        },
        tenants: Vec::new(),
        generate: None,
    };
    #[derive(Clone, Copy, PartialEq)]
    enum Section {
        Top,
        Tenant,
        Generate,
    }
    let mut section = Section::Top;
    for (idx, text) in src.lines().enumerate() {
        let mut lx = LineLexer {
            chars: text.chars().collect(),
            line: idx as u32 + 1,
            i: 0,
        };
        if lx.at_end() {
            continue;
        }
        if lx.peek() == Some('[') {
            let header_pos = lx.pos();
            lx.i += 1;
            let array_of_tables = lx.peek() == Some('[');
            if array_of_tables {
                lx.i += 1;
            }
            let (name, _) = lx.bare_token();
            let close = if array_of_tables { "]]" } else { "]" };
            for _ in 0..close.len() {
                if lx.peek() != Some(']') {
                    return Err(SpecError::new(
                        header_pos,
                        format!("truncated table header (expected '{close}')"),
                    ));
                }
                lx.i += 1;
            }
            if !lx.at_end() {
                return Err(SpecError::new(
                    lx.pos(),
                    "unexpected characters after table header",
                ));
            }
            match (array_of_tables, name.as_str()) {
                (true, "tenant") => {
                    raw.tenants.push(Table {
                        pos: header_pos,
                        entries: Vec::new(),
                    });
                    section = Section::Tenant;
                }
                (false, "generate") => {
                    if raw.generate.is_some() {
                        return Err(SpecError::new(header_pos, "duplicate [generate] table"));
                    }
                    raw.generate = Some(Table {
                        pos: header_pos,
                        entries: Vec::new(),
                    });
                    section = Section::Generate;
                }
                (true, other) => {
                    return Err(SpecError::new(
                        header_pos,
                        format!("unknown table '[[{other}]]' (only [[tenant]] is accepted)"),
                    ));
                }
                (false, other) => {
                    return Err(SpecError::new(
                        header_pos,
                        format!("unknown table '[{other}]' (only [generate] is accepted)"),
                    ));
                }
            }
            continue;
        }
        // key = value
        let (key, key_pos) = lx.bare_token();
        if key.is_empty() {
            return Err(SpecError::new(
                lx.pos(),
                format!("expected a key, found '{}'", lx.peek().unwrap_or(' ')),
            ));
        }
        lx.skip_ws();
        if lx.peek() != Some('=') {
            return Err(SpecError::new(
                lx.pos(),
                format!("expected '=' after key '{key}'"),
            ));
        }
        lx.i += 1;
        let (val, val_pos) = lx.value()?;
        if !lx.at_end() {
            return Err(SpecError::new(
                lx.pos(),
                "unexpected characters after value",
            ));
        }
        let table = match section {
            Section::Top => &mut raw.top,
            Section::Tenant => raw.tenants.last_mut().expect("in a tenant section"),
            Section::Generate => raw.generate.as_mut().expect("in the generate section"),
        };
        if let Some(prev) = table.get(&key) {
            return Err(SpecError::new(
                key_pos,
                format!(
                    "duplicate key '{key}' (first set at line {}, column {})",
                    prev.key_pos.0, prev.key_pos.1
                ),
            ));
        }
        table.entries.push(Entry {
            key,
            key_pos,
            val,
            val_pos,
        });
    }
    Ok(raw)
}

// ---------------------------------------------------------------------
// Typed extraction helpers.
// ---------------------------------------------------------------------

fn want_str(e: &Entry) -> Result<&str, SpecError> {
    match &e.val {
        Value::Str(s) => Ok(s),
        other => Err(SpecError::new(
            e.val_pos,
            format!(
                "key '{}' expects a string, found {}",
                e.key,
                other.type_name()
            ),
        )),
    }
}

fn want_int(e: &Entry) -> Result<i128, SpecError> {
    match e.val {
        Value::Int(v) => Ok(v),
        ref other => Err(SpecError::new(
            e.val_pos,
            format!(
                "key '{}' expects an integer, found {}",
                e.key,
                other.type_name()
            ),
        )),
    }
}

fn want_uint(e: &Entry, max: u128, what: &str) -> Result<u128, SpecError> {
    let v = want_int(e)?;
    if v < 0 || v as u128 > max {
        return Err(SpecError::new(
            e.val_pos,
            format!("{what} {v} out of range (0..={max})"),
        ));
    }
    Ok(v as u128)
}

fn want_u64(e: &Entry, what: &str) -> Result<u64, SpecError> {
    want_uint(e, u64::MAX as u128, what).map(|v| v as u64)
}

fn want_u32(e: &Entry, what: &str) -> Result<u32, SpecError> {
    want_uint(e, u32::MAX as u128, what).map(|v| v as u32)
}

fn want_u16(e: &Entry, what: &str) -> Result<u16, SpecError> {
    want_uint(e, u16::MAX as u128, what).map(|v| v as u16)
}

fn want_f64(e: &Entry) -> Result<f64, SpecError> {
    match e.val {
        Value::Float(v) => Ok(v),
        Value::Int(v) => Ok(v as f64),
        ref other => Err(SpecError::new(
            e.val_pos,
            format!(
                "key '{}' expects a number, found {}",
                e.key,
                other.type_name()
            ),
        )),
    }
}

fn want_rate(e: &Entry) -> Result<f64, SpecError> {
    let v = want_f64(e)?;
    if !v.is_finite() || v <= 0.0 {
        return Err(SpecError::new(
            e.val_pos,
            format!("key '{}' must be a positive finite rate, got {v}", e.key),
        ));
    }
    Ok(v)
}

fn check_known_keys(table: &Table, allowed: &[&str]) -> Result<(), SpecError> {
    for e in &table.entries {
        if !allowed.contains(&e.key.as_str()) {
            return Err(SpecError::new(
                e.key_pos,
                format!("unknown key '{}'", e.key),
            ));
        }
    }
    Ok(())
}

fn missing(table: &Table, what: &str, key: &str) -> SpecError {
    SpecError::new(table.pos, format!("{what} is missing required key '{key}'"))
}

/// Unit suffixes a time-valued key accepts, with their picosecond scale.
const TIME_SUFFIXES: [(&str, u64); 3] = [("us", 1_000_000), ("ns", 1_000), ("ps", 1)];

/// `<name>_us` / `<name>_ns` / `<name>_ps` → picoseconds, rejecting more
/// than one spelling. The simulator's clocks tick in picoseconds, so the
/// `_ps` spelling round-trips values the coarser units cannot (e.g. a
/// 51.2 ns intra-burst gap).
fn time_ps(table: &Table, base: &str, default_ps: u64) -> Result<u64, SpecError> {
    Ok(opt_time_ps(table, base)?.map_or(default_ps, |(_, ps)| ps))
}

/// Like [`time_ps`] but with no default: `None` when no suffixed spelling
/// of the key is present. Returns the value's position so callers can
/// anchor range errors (e.g. "churn must be positive") to the token.
fn opt_time_ps(table: &Table, base: &str) -> Result<Option<(Pos, u64)>, SpecError> {
    let mut found: Option<(String, Pos, u64)> = None;
    for (suffix, scale) in TIME_SUFFIXES {
        let key = format!("{base}_{suffix}");
        let Some(e) = table.get(&key) else { continue };
        if let Some((first, _, _)) = &found {
            return Err(SpecError::new(
                e.key_pos,
                format!("give '{first}' or '{key}', not both"),
            ));
        }
        let v = want_u64(e, &key)?;
        let ps = v
            .checked_mul(scale)
            .ok_or_else(|| SpecError::new(e.val_pos, format!("{key} overflows picoseconds")))?;
        found = Some((key, e.val_pos, ps));
    }
    Ok(found.map(|(_, pos, ps)| (pos, ps)))
}

/// Parses an optional positive duration key (`<base>_us/_ns/_ps`),
/// rejecting zero — a zero flow lifetime or flush window is always a
/// spec mistake, not a request to disable the feature (omit the key for
/// that).
fn opt_positive_time(table: &Table, base: &str) -> Result<Option<Duration>, SpecError> {
    match opt_time_ps(table, base)? {
        Some((pos, 0)) => Err(SpecError::new(pos, format!("{base} must be positive"))),
        Some((_, ps)) => Ok(Some(Duration::from_ps(ps))),
        None => Ok(None),
    }
}

/// Whether any spelling of the time key `<base>_{us,ns,ps}` is present.
fn time_key_present(table: &Table, base: &str) -> bool {
    TIME_SUFFIXES
        .iter()
        .any(|(suffix, _)| table.get(&format!("{base}_{suffix}")).is_some())
}

/// Validates a CAT way mask against the paper hierarchy every scenario
/// runs on: inside the LLC associativity and disjoint from the DDIO
/// partition (which stays reserved for inbound DMA).
fn check_way_mask(mask: WayMask, pos: Pos) -> Result<(), SpecError> {
    let geom = HierarchyConfig::paper_default(1);
    if mask.is_empty() {
        return Err(SpecError::new(pos, "way mask selects no LLC way"));
    }
    if mask.intersect(WayMask::all(geom.llc.ways)) != mask {
        return Err(SpecError::new(
            pos,
            format!("way mask {mask} wider than the {}-way LLC", geom.llc.ways),
        ));
    }
    if !mask.intersect(geom.ddio_mask()).is_empty() {
        return Err(SpecError::new(
            pos,
            format!(
                "way mask {mask} overlaps the {} DDIO ways (ways 0..{})",
                geom.ddio_ways, geom.ddio_ways
            ),
        ));
    }
    Ok(())
}

/// Parses a `"0b..."` binary way-mask literal and validates it.
fn parse_way_mask(s: &str, pos: Pos) -> Result<WayMask, SpecError> {
    let bits = s
        .strip_prefix("0b")
        .and_then(|b| u64::from_str_radix(b, 2).ok())
        .ok_or_else(|| {
            SpecError::new(
                pos,
                format!("way mask '{s}' must be a binary literal like \"0b111100\""),
            )
        })?;
    let mask = WayMask::from_bits(bits);
    check_way_mask(mask, pos)?;
    Ok(mask)
}

fn parse_policy_spec(s: &str, pos: Pos) -> Result<PolicySpec, SpecError> {
    if let Some(p) = SteeringPolicy::from_name(s) {
        return Ok(PolicySpec::Preset(p));
    }
    // The custom form mirrors PolicySpec::label exactly:
    // custom(inval=0|1,prefetch=off|always|dynamic,dram=0|1,tune=0|1
    //        [,ways=0b..|,cat=auto])
    if let Some(body) = s.strip_prefix("custom(").and_then(|r| r.strip_suffix(')')) {
        let mut caps = PolicyCaps {
            invalidate: false,
            prefetch: PrefetchMode::Off,
            direct_dram: false,
            tune_ddio_ways: false,
            cat: CatMode::Off,
        };
        let bit = |v: &str, k: &str| match v {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(SpecError::new(
                pos,
                format!("custom policy flag '{k}' must be 0 or 1"),
            )),
        };
        let mut seen = Vec::new();
        for part in body.split(',') {
            let Some((k, v)) = part.split_once('=') else {
                return Err(SpecError::new(
                    pos,
                    format!("malformed custom policy component '{part}'"),
                ));
            };
            if seen.contains(&k.to_string()) {
                return Err(SpecError::new(
                    pos,
                    format!("duplicate custom policy flag '{k}'"),
                ));
            }
            seen.push(k.to_string());
            match k {
                "inval" => caps.invalidate = bit(v, k)?,
                "prefetch" => {
                    caps.prefetch = match v {
                        "off" => PrefetchMode::Off,
                        "always" => PrefetchMode::Always,
                        "dynamic" => PrefetchMode::Dynamic,
                        _ => {
                            return Err(SpecError::new(
                                pos,
                                format!("prefetch mode '{v}' is not off|always|dynamic"),
                            ));
                        }
                    }
                }
                "dram" => caps.direct_dram = bit(v, k)?,
                "tune" => caps.tune_ddio_ways = bit(v, k)?,
                "ways" => {
                    if caps.cat != CatMode::Off {
                        return Err(SpecError::new(pos, "give 'ways' or 'cat', not both"));
                    }
                    caps.cat = CatMode::Static(parse_way_mask(v, pos)?);
                }
                "cat" => {
                    if caps.cat != CatMode::Off {
                        return Err(SpecError::new(pos, "give 'ways' or 'cat', not both"));
                    }
                    if v != "auto" {
                        return Err(SpecError::new(
                            pos,
                            format!("custom policy component cat '{v}' must be auto"),
                        ));
                    }
                    caps.cat = CatMode::Auto;
                }
                _ => {
                    return Err(SpecError::new(
                        pos,
                        format!("unknown custom policy flag '{k}'"),
                    ));
                }
            }
        }
        return Ok(PolicySpec::Custom(caps));
    }
    Err(SpecError::new(
        pos,
        format!(
            "unknown policy '{s}' (expected ddio|invalidate|prefetch|static|idio|iat \
             or custom(inval=..,prefetch=..,dram=..,tune=..[,ways=0b..|,cat=auto]))"
        ),
    ))
}

fn parse_nf(s: &str, pos: Pos) -> Result<NfKind, SpecError> {
    match s {
        "touch-drop" => Ok(NfKind::TouchDrop),
        "l2fwd" => Ok(NfKind::L2Fwd),
        "l2fwd-payload-drop" => Ok(NfKind::L2FwdPayloadDrop),
        "touch-drop-copy" => Ok(NfKind::TouchDropCopy),
        "deep-fwd" => Ok(NfKind::DeepFwd),
        _ => Err(SpecError::new(
            pos,
            format!(
                "unknown nf '{s}' (expected touch-drop|l2fwd|l2fwd-payload-drop|\
                 touch-drop-copy|deep-fwd)"
            ),
        )),
    }
}

fn nf_file_name(nf: NfKind) -> &'static str {
    match nf {
        NfKind::TouchDrop => "touch-drop",
        NfKind::L2Fwd => "l2fwd",
        NfKind::L2FwdPayloadDrop => "l2fwd-payload-drop",
        NfKind::TouchDropCopy => "touch-drop-copy",
        NfKind::DeepFwd => "deep-fwd",
        NfKind::Chain(_) => unreachable!("chains serialize as 'chain = [...]'"),
    }
}

/// Parses a `chain = ["parse", ...]` stage list into a chained NF.
fn parse_chain(e: &Entry) -> Result<NfKind, SpecError> {
    let list = match &e.val {
        Value::Strs(list) => list,
        Value::Ints(list) if list.is_empty() => {
            return Err(SpecError::new(
                e.val_pos,
                "chain must name at least one stage",
            ));
        }
        other => {
            return Err(SpecError::new(
                e.val_pos,
                format!(
                    "key 'chain' expects a string array, found {}",
                    other.type_name()
                ),
            ));
        }
    };
    if list.len() > MAX_CHAIN_STAGES {
        return Err(SpecError::new(
            e.val_pos,
            format!(
                "chain has {} stages; at most {MAX_CHAIN_STAGES} supported",
                list.len()
            ),
        ));
    }
    let mut stages = Vec::with_capacity(list.len());
    for (i, (s, pos)) in list.iter().enumerate() {
        let stage = ChainStage::from_name(s).ok_or_else(|| {
            SpecError::new(
                *pos,
                format!(
                    "unknown chain stage '{s}' (expected parse|classify|inspect|rewrite|forward)"
                ),
            )
        })?;
        if stage == ChainStage::Forward && i + 1 != list.len() {
            return Err(SpecError::new(
                *pos,
                "'forward' must be the last stage of a chain",
            ));
        }
        stages.push(stage);
    }
    let chain = NfChain::new(&stages).map_err(|err| SpecError::new(e.val_pos, err))?;
    Ok(NfKind::Chain(chain))
}

/// Parses a `pool` spelling: `"dram"`, `"recycle"`, or `"recycle:N"`.
fn parse_pool(s: &str, pos: Pos) -> Result<PoolSpec, SpecError> {
    match s {
        "dram" => return Ok(PoolSpec::Dram),
        "recycle" => return Ok(PoolSpec::Recycle { slots: None }),
        _ => {}
    }
    if let Some(n) = s.strip_prefix("recycle:") {
        let slots: u32 = n
            .parse()
            .map_err(|_| SpecError::new(pos, format!("recycle pool size '{n}' is not a u32")))?;
        if slots == 0 {
            return Err(SpecError::new(pos, "recycle pool needs at least one slot"));
        }
        return Ok(PoolSpec::Recycle { slots: Some(slots) });
    }
    Err(SpecError::new(
        pos,
        format!("unknown pool '{s}' (expected dram|recycle|recycle:<slots>)"),
    ))
}

fn policy_file_name(spec: PolicySpec) -> String {
    match spec {
        PolicySpec::Preset(p) => match p {
            SteeringPolicy::Ddio => "ddio".into(),
            SteeringPolicy::InvalidateOnly => "invalidate".into(),
            SteeringPolicy::PrefetchOnly => "prefetch".into(),
            SteeringPolicy::StaticIdio => "static".into(),
            SteeringPolicy::Idio => "idio".into(),
            SteeringPolicy::IatDynamic => "iat".into(),
        },
        // The custom form is exactly PolicySpec::label, which
        // parse_policy_spec accepts back.
        custom => custom.label(),
    }
}

// ---------------------------------------------------------------------
// Tables → Scenario.
// ---------------------------------------------------------------------

const TOP_KEYS: &[&str] = &[
    "name",
    "description",
    "policy",
    "steering",
    "duration_us",
    "duration_ns",
    "duration_ps",
    "drain_grace_us",
    "drain_grace_ns",
    "drain_grace_ps",
    "perfect_filters",
    "atr_lifetime_us",
    "atr_lifetime_ns",
    "atr_lifetime_ps",
    "pool_idle_flush_us",
    "pool_idle_flush_ns",
    "pool_idle_flush_ps",
];

const TENANT_KEYS: &[&str] = &[
    "name",
    "nf",
    "chain",
    "pool",
    "cores",
    "flows",
    "churn_us",
    "churn_ns",
    "churn_ps",
    "train",
    "base_port",
    "packet_len",
    "dscp",
    "traffic",
    "rate_gbps",
    "seed",
    "burst_packets",
    "burst_period_us",
    "burst_period_ns",
    "burst_period_ps",
    "burst_gap_us",
    "burst_gap_ns",
    "burst_gap_ps",
    "policy",
    "way_mask",
    "cat",
    "max_p99_ns",
    "max_drop_rate",
    "replay",
];

const GEN_KEYS: &[&str] = &[
    "tenants",
    "seed",
    "cores_per_tenant",
    "flows_per_tenant",
    "base_port",
    "total_rate_gbps",
    "rate_dist",
    "zipf_s",
    "app_classes",
    "attacker_frac",
    "cat",
    "max_p99_ns",
    "max_drop_rate",
];

fn reject_inapplicable(table: &Table, keys: &[&str], why: &str) -> Result<(), SpecError> {
    for key in keys {
        if let Some(e) = table.get(key) {
            return Err(SpecError::new(e.key_pos, format!("key '{key}' {why}")));
        }
    }
    Ok(())
}

/// Keys only `traffic = "bursty"` accepts.
const BURST_KEYS: &[&str] = &[
    "burst_packets",
    "burst_period_us",
    "burst_period_ns",
    "burst_period_ps",
    "burst_gap_us",
    "burst_gap_ns",
    "burst_gap_ps",
];

fn tenant_traffic(t: &Table, packet_len: u16) -> Result<TrafficPattern, SpecError> {
    let kind_entry = t
        .get("traffic")
        .ok_or_else(|| missing(t, "tenant", "traffic"))?;
    let kind = want_str(kind_entry)?;
    match kind {
        "steady" => {
            reject_inapplicable(t, &["seed"], "requires traffic = \"poisson\"")?;
            reject_inapplicable(t, BURST_KEYS, "requires traffic = \"bursty\"")?;
            let rate = t
                .get("rate_gbps")
                .ok_or_else(|| missing(t, "tenant", "rate_gbps"))?;
            Ok(TrafficPattern::Steady {
                rate_gbps: want_rate(rate)?,
            })
        }
        "poisson" => {
            reject_inapplicable(t, BURST_KEYS, "requires traffic = \"bursty\"")?;
            let rate = t
                .get("rate_gbps")
                .ok_or_else(|| missing(t, "tenant", "rate_gbps"))?;
            let seed = t.get("seed").ok_or_else(|| missing(t, "tenant", "seed"))?;
            Ok(TrafficPattern::Poisson {
                rate_gbps: want_rate(rate)?,
                seed: want_u64(seed, "seed")?,
            })
        }
        "bursty" => {
            reject_inapplicable(t, &["seed"], "requires traffic = \"poisson\"")?;
            let packets_e = t
                .get("burst_packets")
                .ok_or_else(|| missing(t, "tenant", "burst_packets"))?;
            let packets = want_u32(packets_e, "burst_packets")?;
            if packets == 0 {
                return Err(SpecError::new(
                    packets_e.val_pos,
                    "burst_packets must be positive",
                ));
            }
            let period_ps = match time_ps(t, "burst_period", 0)? {
                0 => return Err(missing(t, "tenant", "burst_period_us")),
                v => v,
            };
            let rate = t.get("rate_gbps");
            let intra_gap = match (time_key_present(t, "burst_gap"), rate) {
                (true, Some(e)) => {
                    return Err(SpecError::new(
                        e.key_pos,
                        "give 'burst_gap_ns' or 'rate_gbps', not both",
                    ));
                }
                (true, None) => Duration::from_ps(time_ps(t, "burst_gap", 0)?),
                (false, Some(e)) => {
                    // The paper's for_ring construction: the intra-burst
                    // gap is the wire time of one frame at the burst rate.
                    wire_time(u64::from(packet_len), want_rate(e)?)
                }
                (false, None) => return Err(missing(t, "tenant", "burst_gap_ns")),
            };
            let spec = BurstSpec {
                period: Duration::from_ps(period_ps),
                packets_per_burst: packets,
                intra_gap,
            };
            // Same fit check BurstSpec::for_ring asserts, as an error.
            if spec.intra_gap * u64::from(packets) >= spec.period {
                return Err(SpecError::new(
                    packets_e.val_pos,
                    format!(
                        "burst of {} does not fit in period {}",
                        spec.intra_gap * u64::from(packets),
                        spec.period
                    ),
                ));
            }
            Ok(TrafficPattern::Bursty(spec))
        }
        other => Err(SpecError::new(
            kind_entry.val_pos,
            format!("unknown traffic '{other}' (expected steady|poisson|bursty)"),
        )),
    }
}

fn tenant_slo(t: &Table) -> Result<Option<SloSpec>, SpecError> {
    let p99 = t
        .get("max_p99_ns")
        .map(|e| want_u64(e, "max_p99_ns"))
        .transpose()?;
    let drop = match t.get("max_drop_rate") {
        Some(e) => {
            let v = want_f64(e)?;
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(SpecError::new(
                    e.val_pos,
                    format!("max_drop_rate {v} out of range (0.0..=1.0)"),
                ));
            }
            Some(v)
        }
        None => None,
    };
    if p99.is_none() && drop.is_none() {
        return Ok(None);
    }
    Ok(Some(SloSpec {
        max_p99_ns: p99,
        max_drop_rate: drop,
    }))
}

fn build_tenant(
    t: &Table,
    base_dir: Option<&Path>,
    default_policy: SteeringPolicy,
) -> Result<TenantDef, SpecError> {
    check_known_keys(t, TENANT_KEYS)?;
    let name = want_str(t.get("name").ok_or_else(|| missing(t, "tenant", "name"))?)?.to_string();
    if name.is_empty() {
        let e = t.get("name").expect("checked above");
        return Err(SpecError::new(e.val_pos, "tenant name must not be empty"));
    }
    let nf = match (t.get("nf"), t.get("chain")) {
        (Some(_), Some(chain_entry)) => {
            return Err(SpecError::new(
                chain_entry.key_pos,
                "give 'nf' or 'chain', not both",
            ));
        }
        (Some(nf_entry), None) => parse_nf(want_str(nf_entry)?, nf_entry.val_pos)?,
        (None, Some(chain_entry)) => parse_chain(chain_entry)?,
        (None, None) => return Err(missing(t, "tenant", "nf")),
    };
    let pool = match t.get("pool") {
        Some(e) => Some(parse_pool(want_str(e)?, e.val_pos)?),
        None => None,
    };
    let cores_entry = t
        .get("cores")
        .ok_or_else(|| missing(t, "tenant", "cores"))?;
    let cores = match &cores_entry.val {
        Value::Ints(list) if !list.is_empty() => {
            let mut cores = Vec::with_capacity(list.len());
            for &(v, pos) in list {
                if !(0..=i128::from(u16::MAX)).contains(&v) {
                    return Err(SpecError::new(
                        pos,
                        format!("core {v} out of range (0..={})", u16::MAX),
                    ));
                }
                cores.push(v as u16);
            }
            cores
        }
        Value::Ints(_) => {
            return Err(SpecError::new(
                cores_entry.val_pos,
                "tenant must own at least one core",
            ));
        }
        other => {
            return Err(SpecError::new(
                cores_entry.val_pos,
                format!(
                    "key 'cores' expects an integer array, found {}",
                    other.type_name()
                ),
            ));
        }
    };
    let flows_entry = t
        .get("flows")
        .ok_or_else(|| missing(t, "tenant", "flows"))?;
    let flows = want_uint(flows_entry, u128::from(MAX_FLOW_SET_FLOWS), "flows")? as u32;
    if flows == 0 {
        return Err(SpecError::new(
            flows_entry.val_pos,
            "flows must be positive",
        ));
    }
    let churn = opt_positive_time(t, "churn")?;
    let train = match t.get("train") {
        Some(e) => {
            let v = want_u32(e, "train")?;
            if v == 0 {
                return Err(SpecError::new(e.val_pos, "train must be positive"));
            }
            v
        }
        None => 1,
    };
    let base_port = want_u16(
        t.get("base_port")
            .ok_or_else(|| missing(t, "tenant", "base_port"))?,
        "base_port",
    )?;
    let packet_len_entry = t
        .get("packet_len")
        .ok_or_else(|| missing(t, "tenant", "packet_len"))?;
    let packet_len = want_u16(packet_len_entry, "packet_len")?;
    if packet_len < MIN_FRAME_BYTES {
        return Err(SpecError::new(
            packet_len_entry.val_pos,
            format!("packet_len {packet_len} below the Ethernet minimum ({MIN_FRAME_BYTES})"),
        ));
    }
    let dscp = match t.get("dscp") {
        Some(e) => {
            let v = want_uint(e, 255, "dscp")? as u8;
            Dscp::new(v).ok_or_else(|| {
                SpecError::new(e.val_pos, format!("dscp {v} out of range (0..=63)"))
            })?
        }
        None => Dscp::BEST_EFFORT,
    };
    let traffic = tenant_traffic(t, packet_len)?;
    let mut policy = match t.get("policy") {
        Some(e) => Some(parse_policy_spec(want_str(e)?, e.val_pos)?),
        None => None,
    };
    // `way_mask` / `cat` sugar: fold a CAT partition into the tenant's
    // capability set (the explicit policy if given, the scenario default
    // otherwise).
    let cat_sugar = match (t.get("way_mask"), t.get("cat")) {
        (Some(_), Some(e)) => {
            return Err(SpecError::new(
                e.key_pos,
                "give 'way_mask' or 'cat', not both",
            ));
        }
        (Some(e), None) => {
            let mask = parse_way_mask(want_str(e)?, e.val_pos)?;
            Some((CatMode::Static(mask), e))
        }
        (None, Some(e)) => {
            let v = want_str(e)?;
            if v != "auto" {
                return Err(SpecError::new(
                    e.val_pos,
                    format!("cat '{v}' must be \"auto\" (or use way_mask for a fixed mask)"),
                ));
            }
            Some((CatMode::Auto, e))
        }
        (None, None) => None,
    };
    if let Some((mode, e)) = cat_sugar {
        let base = policy.map_or_else(|| default_policy.caps(), |p| p.caps());
        if base.cat != CatMode::Off {
            return Err(SpecError::new(
                e.key_pos,
                "the tenant's policy already sets a CAT partition",
            ));
        }
        policy = Some(PolicySpec::Custom(PolicyCaps { cat: mode, ..base }));
    }
    let replay = match t.get("replay") {
        Some(e) => {
            let rel = want_str(e)?;
            let Some(dir) = base_dir else {
                return Err(SpecError::new(
                    e.val_pos,
                    "replay traces need a file context (load the scenario from a path)",
                ));
            };
            let path = dir.join(rel);
            let bytes = std::fs::read(&path).map_err(|err| {
                SpecError::new(
                    e.val_pos,
                    format!("cannot read replay trace '{}': {err}", path.display()),
                )
            })?;
            let arrivals = read_trace(bytes.as_slice()).map_err(|err| {
                SpecError::new(
                    e.val_pos,
                    format!("replay trace '{}' is malformed: {err}", path.display()),
                )
            })?;
            Some(arrivals)
        }
        None => None,
    };
    Ok(TenantDef {
        name,
        nf,
        cores,
        flows,
        churn,
        train,
        base_port,
        traffic,
        packet_len,
        dscp,
        replay,
        policy,
        slo: tenant_slo(t)?,
        pool,
    })
}

fn build_generate(g: &Table) -> Result<GenSpec, SpecError> {
    check_known_keys(g, GEN_KEYS)?;
    let tenants_entry = g
        .get("tenants")
        .ok_or_else(|| missing(g, "[generate]", "tenants"))?;
    let tenants = want_uint(tenants_entry, 4096, "tenants")? as usize;
    if tenants == 0 {
        return Err(SpecError::new(
            tenants_entry.val_pos,
            "tenants must be positive",
        ));
    }
    let mut spec = GenSpec::new(tenants);
    if let Some(e) = g.get("seed") {
        spec.seed = want_u64(e, "seed")?;
    }
    if let Some(e) = g.get("cores_per_tenant") {
        let v = want_u16(e, "cores_per_tenant")?;
        if v == 0 {
            return Err(SpecError::new(
                e.val_pos,
                "cores_per_tenant must be positive",
            ));
        }
        spec.cores_per_tenant = v;
    }
    if let Some(e) = g.get("flows_per_tenant") {
        let v = want_uint(e, u128::from(MAX_FLOW_SET_FLOWS), "flows_per_tenant")? as u32;
        if v == 0 {
            return Err(SpecError::new(
                e.val_pos,
                "flows_per_tenant must be positive",
            ));
        }
        spec.flows_per_tenant = v;
    }
    if let Some(e) = g.get("base_port") {
        spec.base_port = want_u16(e, "base_port")?;
    }
    if let Some(e) = g.get("total_rate_gbps") {
        spec.total_rate_gbps = want_rate(e)?;
    }
    let dist_entry = g.get("rate_dist");
    let dist_name = dist_entry.map(want_str).transpose()?.unwrap_or("zipf");
    spec.rate_dist = match dist_name {
        "uniform" => {
            reject_inapplicable(g, &["zipf_s"], "requires rate_dist = \"zipf\"")?;
            RateDist::Uniform
        }
        "zipf" => {
            let s = match g.get("zipf_s") {
                Some(e) => {
                    let v = want_f64(e)?;
                    if !v.is_finite() || v <= 0.0 {
                        return Err(SpecError::new(
                            e.val_pos,
                            format!("zipf_s must be a positive finite exponent, got {v}"),
                        ));
                    }
                    v
                }
                None => 1.1,
            };
            RateDist::Zipf { s }
        }
        other => {
            let e = dist_entry.expect("non-default name comes from an entry");
            return Err(SpecError::new(
                e.val_pos,
                format!("unknown rate_dist '{other}' (expected zipf|uniform)"),
            ));
        }
    };
    if let Some(e) = g.get("app_classes") {
        let Value::Strs(list) = &e.val else {
            return Err(SpecError::new(
                e.val_pos,
                format!(
                    "key 'app_classes' expects a string array, found {}",
                    e.val.type_name()
                ),
            ));
        };
        if list.is_empty() {
            return Err(SpecError::new(e.val_pos, "app_classes must not be empty"));
        }
        let mut classes = Vec::with_capacity(list.len());
        for (s, pos) in list {
            classes.push(AppClass::from_name(s).ok_or_else(|| {
                SpecError::new(
                    *pos,
                    format!("unknown app class '{s}' (expected kvs|nf-chain|bulk)"),
                )
            })?);
        }
        spec.app_classes = classes;
    }
    if let Some(e) = g.get("attacker_frac") {
        let v = want_f64(e)?;
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(SpecError::new(
                e.val_pos,
                format!("attacker_frac {v} out of range (0.0..=1.0)"),
            ));
        }
        spec.attacker_frac = v;
    }
    if let Some(e) = g.get("cat") {
        match want_str(e)? {
            "auto" => spec.cat_auto = true,
            "off" => spec.cat_auto = false,
            other => {
                return Err(SpecError::new(
                    e.val_pos,
                    format!("cat '{other}' must be \"auto\" or \"off\""),
                ));
            }
        }
    }
    spec.slo = tenant_slo(g)?;
    Ok(spec)
}

fn build_scenario(raw: &RawFile, base_dir: Option<&Path>) -> Result<Scenario, SpecError> {
    check_known_keys(&raw.top, TOP_KEYS)?;
    let name_entry = raw
        .top
        .get("name")
        .ok_or_else(|| missing(&raw.top, "scenario", "name"))?;
    let name = want_str(name_entry)?.to_string();
    if name.is_empty() {
        return Err(SpecError::new(
            name_entry.val_pos,
            "scenario name must not be empty",
        ));
    }
    let description = raw
        .top
        .get("description")
        .map(want_str)
        .transpose()?
        .unwrap_or_default()
        .to_string();
    let policy = match raw.top.get("policy") {
        Some(e) => match parse_policy_spec(want_str(e)?, e.val_pos)? {
            PolicySpec::Preset(p) => p,
            PolicySpec::Custom(_) => {
                return Err(SpecError::new(
                    e.val_pos,
                    "the scenario-level policy must be a named preset \
                     (custom capability sets are per-tenant overrides)",
                ));
            }
        },
        None => SteeringPolicy::Idio,
    };
    let steering = match raw.top.get("steering") {
        Some(e) => match want_str(e)? {
            "perfect" => FlowSteering::Perfect,
            "atr" => FlowSteering::Atr,
            other => {
                return Err(SpecError::new(
                    e.val_pos,
                    format!("unknown steering '{other}' (expected perfect|atr)"),
                ));
            }
        },
        None => FlowSteering::Perfect,
    };
    let duration = SimTime::from_ps(time_ps(
        &raw.top,
        "duration",
        SimTime::from_us(400).as_ps(),
    )?);
    let drain_grace = Duration::from_ps(time_ps(
        &raw.top,
        "drain_grace",
        Duration::from_us(300).as_ps(),
    )?);
    let perfect_filters = match raw.top.get("perfect_filters") {
        Some(e) => {
            let v = want_uint(e, 1 << 20, "perfect_filters")? as usize;
            if v == 0 {
                return Err(SpecError::new(
                    e.val_pos,
                    "perfect_filters must be positive",
                ));
            }
            Some(v)
        }
        None => None,
    };
    let atr_lifetime = opt_positive_time(&raw.top, "atr_lifetime")?;
    let pool_idle_flush = opt_positive_time(&raw.top, "pool_idle_flush")?;

    let mut scenario = Scenario {
        name,
        description,
        policy,
        steering,
        duration,
        drain_grace,
        perfect_filters,
        atr_lifetime,
        pool_idle_flush,
        tenants: Vec::new(),
    };

    match (&raw.generate, raw.tenants.is_empty()) {
        (Some(g), true) => {
            let spec = build_generate(g)?;
            scenario = spec
                .expand(scenario)
                .map_err(|e| SpecError::new(g.pos, format!("[generate] expansion failed: {e}")))?;
        }
        (Some(g), false) => {
            return Err(SpecError::new(
                g.pos,
                "a scenario defines either [[tenant]] tables or one [generate] table, not both",
            ));
        }
        (None, true) => {
            return Err(SpecError::new(
                raw.top.pos,
                "scenario has no tenants (add [[tenant]] tables or a [generate] table)",
            ));
        }
        (None, false) => {
            let mut seen: Vec<(String, Pos)> = Vec::new();
            for t in &raw.tenants {
                let tenant = build_tenant(t, base_dir, scenario.policy)?;
                let name_pos = t.get("name").expect("required by build_tenant").val_pos;
                if let Some((_, first)) = seen.iter().find(|(n, _)| *n == tenant.name) {
                    return Err(SpecError::new(
                        name_pos,
                        format!(
                            "duplicate tenant name '{}' (first declared at line {}, column {})",
                            tenant.name, first.0, first.1
                        ),
                    ));
                }
                seen.push((tenant.name.clone(), name_pos));
                scenario.tenants.push(tenant);
            }
        }
    }
    Ok(scenario)
}

// ---------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------

/// Parses a scenario from source text.
///
/// A `[generate]` section is expanded into its full tenant list (see
/// [`crate::gen::GenSpec`]). Tenants with `replay` keys are rejected here
/// — sidecar trace files need a directory to resolve against, so replay
/// scenarios must go through [`load_path`].
///
/// # Errors
///
/// Returns a [`SpecError`] naming the line and column of the first
/// offending token.
pub fn parse_str(src: &str) -> Result<Scenario, SpecError> {
    build_scenario(&lex(src)?, None)
}

/// Reads and parses a scenario file, resolving `replay` trace paths
/// relative to the file's directory.
///
/// # Errors
///
/// Returns a [`SpecError`]; unreadable files produce a position-free
/// error, non-UTF-8 content is reported at the line/column of the first
/// invalid byte, and everything else behaves like [`parse_str`].
pub fn load_path(path: impl AsRef<Path>) -> Result<Scenario, SpecError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| SpecError::no_pos(format!("cannot read '{}': {e}", path.display())))?;
    let src = match String::from_utf8(bytes) {
        Ok(s) => s,
        Err(e) => {
            let valid = &e.as_bytes()[..e.utf8_error().valid_up_to()];
            let line = valid.iter().filter(|&&b| b == b'\n').count() as u32 + 1;
            let col = valid.iter().rev().take_while(|&&b| b != b'\n').count() as u32 + 1;
            return Err(SpecError::new((line, col), "file is not valid UTF-8"));
        }
    };
    build_scenario(&lex(&src)?, path.parent())
}

fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn fmt_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a time key in the coarsest unit that loses nothing: `_ns` when
/// the value is a whole number of nanoseconds, `_ps` otherwise.
fn fmt_time(out: &mut String, base: &str, ps: u64) {
    use std::fmt::Write as _;
    if ps.is_multiple_of(1_000) {
        let _ = writeln!(out, "{base}_ns = {}", ps / 1_000);
    } else {
        let _ = writeln!(out, "{base}_ps = {ps}");
    }
}

/// Renders `scenario` in the canonical file form, such that
/// `parse_str(to_file_string(s))` reproduces `s` exactly for scenarios
/// without replay tenants.
///
/// Replay tenants are rendered with a `replay = "traces/<tenant>.trace"`
/// reference; the caller is responsible for writing the sidecar trace
/// (via [`idio_core::net::trace::write_trace`]) when shipping the file.
pub fn to_file_string(scenario: &Scenario) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "# idio-scenario file (TOML subset; see DESIGN.md)");
    let _ = writeln!(w, "name = {}", fmt_str(&scenario.name));
    let _ = writeln!(w, "description = {}", fmt_str(&scenario.description));
    let _ = writeln!(
        w,
        "policy = {}",
        fmt_str(&policy_file_name(PolicySpec::Preset(scenario.policy)))
    );
    let steering = match scenario.steering {
        FlowSteering::Perfect => "perfect",
        FlowSteering::Atr => "atr",
    };
    let _ = writeln!(w, "steering = {}", fmt_str(steering));
    fmt_time(w, "duration", scenario.duration.as_ps());
    fmt_time(w, "drain_grace", scenario.drain_grace.as_ps());
    if let Some(v) = scenario.perfect_filters {
        let _ = writeln!(w, "perfect_filters = {v}");
    }
    if let Some(d) = scenario.atr_lifetime {
        fmt_time(w, "atr_lifetime", d.as_ps());
    }
    if let Some(d) = scenario.pool_idle_flush {
        fmt_time(w, "pool_idle_flush", d.as_ps());
    }
    for t in &scenario.tenants {
        let _ = writeln!(w);
        let _ = writeln!(w, "[[tenant]]");
        let _ = writeln!(w, "name = {}", fmt_str(&t.name));
        match t.nf {
            NfKind::Chain(c) => {
                let stages: Vec<String> = c.stages().iter().map(|s| fmt_str(s.name())).collect();
                let _ = writeln!(w, "chain = [{}]", stages.join(", "));
            }
            other => {
                let _ = writeln!(w, "nf = {}", fmt_str(nf_file_name(other)));
            }
        }
        if let Some(pool) = t.pool {
            let _ = writeln!(w, "pool = {}", fmt_str(&pool.file_name()));
        }
        let cores: Vec<String> = t.cores.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(w, "cores = [{}]", cores.join(", "));
        let _ = writeln!(w, "flows = {}", t.flows);
        if let Some(d) = t.churn {
            fmt_time(w, "churn", d.as_ps());
        }
        if t.train != 1 {
            let _ = writeln!(w, "train = {}", t.train);
        }
        let _ = writeln!(w, "base_port = {}", t.base_port);
        let _ = writeln!(w, "packet_len = {}", t.packet_len);
        let _ = writeln!(w, "dscp = {}", t.dscp.get());
        match t.traffic {
            TrafficPattern::Steady { rate_gbps } => {
                let _ = writeln!(w, "traffic = \"steady\"");
                let _ = writeln!(w, "rate_gbps = {}", fmt_f64(rate_gbps));
            }
            TrafficPattern::Poisson { rate_gbps, seed } => {
                let _ = writeln!(w, "traffic = \"poisson\"");
                let _ = writeln!(w, "rate_gbps = {}", fmt_f64(rate_gbps));
                let _ = writeln!(w, "seed = {seed}");
            }
            TrafficPattern::Bursty(spec) => {
                let _ = writeln!(w, "traffic = \"bursty\"");
                let _ = writeln!(w, "burst_packets = {}", spec.packets_per_burst);
                fmt_time(w, "burst_period", spec.period.as_ps());
                fmt_time(w, "burst_gap", spec.intra_gap.as_ps());
            }
        }
        if let Some(p) = t.policy {
            let _ = writeln!(w, "policy = {}", fmt_str(&policy_file_name(p)));
        }
        if let Some(slo) = t.slo {
            if let Some(v) = slo.max_p99_ns {
                let _ = writeln!(w, "max_p99_ns = {v}");
            }
            if let Some(v) = slo.max_drop_rate {
                let _ = writeln!(w, "max_drop_rate = {}", fmt_f64(v));
            }
        }
        if t.replay.is_some() {
            let _ = writeln!(
                w,
                "replay = {}",
                fmt_str(&format!("traces/{}.trace", t.name))
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_engine::check::{Cases, Gen};

    const MINIMAL: &str = r#"
# smallest useful scenario
name = "mini"
description = "one tenant"

[[tenant]]
name = "a"
nf = "touch-drop"
cores = [0, 1]
flows = 4
base_port = 5_000
packet_len = 0x200
traffic = "steady"
rate_gbps = 10.0
"#;

    #[test]
    fn parses_a_minimal_scenario_with_defaults() {
        let sc = parse_str(MINIMAL).unwrap();
        assert_eq!(sc.name, "mini");
        assert_eq!(sc.description, "one tenant");
        assert_eq!(sc.policy, SteeringPolicy::Idio, "default policy");
        assert_eq!(sc.steering, FlowSteering::Perfect, "default steering");
        assert_eq!(sc.duration, SimTime::from_us(400), "default horizon");
        assert_eq!(sc.drain_grace, Duration::from_us(300));
        assert_eq!(sc.tenants.len(), 1);
        let t = &sc.tenants[0];
        assert_eq!(t.cores, vec![0, 1]);
        assert_eq!(t.base_port, 5000, "underscore separators accepted");
        assert_eq!(t.packet_len, 0x200, "hex integers accepted");
        assert_eq!(t.traffic, TrafficPattern::Steady { rate_gbps: 10.0 });
        assert_eq!(t.dscp, Dscp::BEST_EFFORT);
        assert!(t.policy.is_none() && t.slo.is_none() && t.replay.is_none());
        sc.validate().unwrap();
    }

    #[test]
    fn full_surface_parses() {
        let src = r#"
name = "full"
description = "every optional key"
policy = "static"
steering = "atr"
duration_us = 120
drain_grace_ns = 5000

[[tenant]]
name = "poisson"
nf = "deep-fwd"
cores = [0]
flows = 2
base_port = 5000
packet_len = 256
dscp = 8
traffic = "poisson"
rate_gbps = 3.5
seed = 18446744073709551615
policy = "custom(inval=1,prefetch=dynamic,dram=0,tune=1)"
max_p99_ns = 1000000

[[tenant]]
name = "bursty"
nf = "l2fwd"
cores = [1]
flows = 1
base_port = 6000
packet_len = 1514
traffic = "bursty"
burst_packets = 16
burst_period_us = 50
burst_gap_ns = 200
policy = "ddio"
max_drop_rate = 0.25
"#;
        let sc = parse_str(src).unwrap();
        assert_eq!(sc.policy, SteeringPolicy::StaticIdio);
        assert_eq!(sc.steering, FlowSteering::Atr);
        assert_eq!(sc.duration, SimTime::from_us(120));
        assert_eq!(sc.drain_grace, Duration::from_ns(5000));
        let p = &sc.tenants[0];
        assert_eq!(
            p.traffic,
            TrafficPattern::Poisson {
                rate_gbps: 3.5,
                seed: u64::MAX
            },
            "u64-range seeds survive"
        );
        assert_eq!(
            p.policy,
            Some(PolicySpec::Custom(PolicyCaps {
                invalidate: true,
                prefetch: PrefetchMode::Dynamic,
                direct_dram: false,
                tune_ddio_ways: true,
                cat: CatMode::Off,
            }))
        );
        assert_eq!(p.slo.unwrap().max_p99_ns, Some(1_000_000));
        assert_eq!(p.dscp.get(), 8);
        let b = &sc.tenants[1];
        assert_eq!(
            b.traffic,
            TrafficPattern::Bursty(BurstSpec {
                period: Duration::from_us(50),
                packets_per_burst: 16,
                intra_gap: Duration::from_ns(200),
            })
        );
        assert_eq!(b.policy, Some(PolicySpec::Preset(SteeringPolicy::Ddio)));
        assert_eq!(b.slo.unwrap().max_drop_rate, Some(0.25));
    }

    #[track_caller]
    fn err_at(src: &str, line: u32, col: u32, needle: &str) {
        let e = parse_str(src).unwrap_err();
        assert_eq!((e.line, e.col), (line, col), "{e}");
        assert!(e.msg.contains(needle), "'{}' missing '{needle}'", e.msg);
    }

    #[test]
    fn errors_carry_line_and_column() {
        err_at("name = \"x\"\nbogus = 1\n", 2, 1, "unknown key 'bogus'");
        err_at("name = \"x\"\nname = \"y\"\n", 2, 1, "duplicate key 'name'");
        err_at("name \"x\"\n", 1, 6, "expected '='");
        err_at("name = \"x\n", 1, 8, "unterminated string");
        err_at(
            "name = \"x\"\nduration_us = [1, \"a\"]\n",
            2,
            19,
            "mixed array",
        );
        err_at("name = \"x\" trailing\n", 1, 12, "unexpected characters");
        err_at("name = \"x\"\n[what]\n", 2, 1, "unknown table");
        err_at("name = \"x\"\n[[tenant\n", 2, 1, "truncated table header");
        err_at(
            "name = \"x\"\npolicy = \"warp\"\n",
            2,
            10,
            "unknown policy 'warp'",
        );
        err_at(
            "name = \"x\"\nduration_us = 12q\n",
            2,
            15,
            "invalid number '12q'",
        );
        err_at("name = 7\n", 1, 8, "expects a string, found integer");
        // Missing required keys anchor at the owning table's header.
        err_at("description = \"x\"\n", 1, 1, "missing required key 'name'");
        err_at(
            "name = \"x\"\n\n[[tenant]]\nname = \"t\"\n",
            3,
            1,
            "missing required key 'nf'",
        );
    }

    #[test]
    fn schema_cross_checks_are_positioned() {
        let tenant = |extra: &str| {
            format!(
                "name = \"x\"\n[[tenant]]\nname = \"t\"\nnf = \"l2fwd\"\ncores = [0]\n\
                 flows = 1\nbase_port = 1000\npacket_len = 256\n{extra}"
            )
        };
        // seed without poisson: error at the seed key.
        let e =
            parse_str(&tenant("traffic = \"steady\"\nrate_gbps = 1.0\nseed = 3\n")).unwrap_err();
        assert_eq!((e.line, e.col), (11, 1), "{e}");
        assert!(e.msg.contains("requires traffic = \"poisson\""));
        // both rate and gap on bursty.
        let e = parse_str(&tenant(
            "traffic = \"bursty\"\nburst_packets = 4\nburst_period_us = 10\n\
             rate_gbps = 1.0\nburst_gap_ns = 50\n",
        ))
        .unwrap_err();
        assert!(e.msg.contains("not both"), "{e}");
        // burst that overflows its period.
        let e = parse_str(&tenant(
            "traffic = \"bursty\"\nburst_packets = 1000\nburst_period_us = 1\nburst_gap_ns = 5000\n",
        ))
        .unwrap_err();
        assert!(e.msg.contains("does not fit"), "{e}");
        // replay needs a file context under parse_str.
        let e = parse_str(&tenant(
            "traffic = \"steady\"\nrate_gbps = 1.0\nreplay = \"t.trace\"\n",
        ))
        .unwrap_err();
        assert!(e.msg.contains("file context"), "{e}");
    }

    #[test]
    fn generate_section_expands_deterministically() {
        let src = r#"
name = "gen"
description = "generated"
policy = "idio"

[generate]
tenants = 6
seed = 42
flows_per_tenant = 2
total_rate_gbps = 12.0
rate_dist = "zipf"
zipf_s = 1.2
app_classes = ["kvs", "bulk"]
attacker_frac = 0.3
"#;
        let a = parse_str(src).unwrap();
        let b = parse_str(src).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.tenants.len(), 6);
        a.validate().unwrap();
        assert!(a
            .tenants
            .iter()
            .all(|t| t.name.contains("kvs") || t.name.contains("bulk")));
    }

    #[test]
    fn generate_and_tenant_tables_conflict() {
        let src = "name = \"x\"\n[[tenant]]\nname = \"t\"\nnf = \"l2fwd\"\ncores = [0]\n\
                   flows = 1\nbase_port = 1000\npacket_len = 256\ntraffic = \"steady\"\n\
                   rate_gbps = 1.0\n\n[generate]\ntenants = 4\n";
        let e = parse_str(src).unwrap_err();
        assert_eq!((e.line, e.col), (12, 1), "{e}");
        assert!(e.msg.contains("not both"));
    }

    // ----- round-trip property -------------------------------------

    fn arbitrary_name(g: &mut Gen, prefix: &str, i: usize) -> String {
        const PALETTE: [char; 12] = [
            'a', 'Z', '0', '-', '_', ' ', '"', '\\', '\u{b5}', '\t', '#', '=',
        ];
        let chars: String = g.vec(0..6, |g| *g.choose(&PALETTE)).into_iter().collect();
        format!("{prefix}{i}{chars}")
    }

    fn arbitrary_policy(g: &mut Gen) -> PolicySpec {
        if g.bool() {
            PolicySpec::Preset(*g.choose(&SteeringPolicy::EXTENDED))
        } else {
            PolicySpec::Custom(PolicyCaps {
                invalidate: g.bool(),
                prefetch: *g.choose(&[
                    PrefetchMode::Off,
                    PrefetchMode::Always,
                    PrefetchMode::Dynamic,
                ]),
                direct_dram: g.bool(),
                tune_ddio_ways: g.bool(),
                cat: arbitrary_cat(g),
            })
        }
    }

    /// CAT modes whose static masks are valid against the paper geometry
    /// (inside the 12 ways, clear of the 2 DDIO ways), so rendered specs
    /// always parse back.
    fn arbitrary_cat(g: &mut Gen) -> CatMode {
        match g.usize(0..3) {
            0 => CatMode::Off,
            1 => CatMode::Auto,
            _ => {
                let lo = g.usize(2..11);
                let hi = g.usize(lo + 1..13);
                CatMode::Static(WayMask::range(lo, hi))
            }
        }
    }

    fn arbitrary_scenario(g: &mut Gen) -> Scenario {
        let n = g.usize(1..5);
        let tenants = (0..n)
            .map(|i| {
                let packet_len = g.u16(MIN_FRAME_BYTES..1515);
                let traffic = match g.usize(0..3) {
                    0 => TrafficPattern::Steady {
                        rate_gbps: g.unit_f64() * 99.0 + 0.01,
                    },
                    1 => TrafficPattern::Poisson {
                        rate_gbps: g.unit_f64() * 99.0 + 0.01,
                        seed: g.u64(0..u64::MAX),
                    },
                    _ => {
                        let packets = g.u32(1..64);
                        // Ps-precision draws exercise both serializer
                        // branches (`_ns` for whole nanoseconds, `_ps`
                        // otherwise).
                        let gap = Duration::from_ps(g.u64(1..1_000_000));
                        let period =
                            gap * u64::from(packets) + Duration::from_ps(g.u64(1..10_000_000));
                        TrafficPattern::Bursty(BurstSpec {
                            period,
                            packets_per_burst: packets,
                            intra_gap: gap,
                        })
                    }
                };
                let mut t = TenantDef::new(
                    arbitrary_name(g, "t", i),
                    *g.choose(&[
                        NfKind::TouchDrop,
                        NfKind::L2Fwd,
                        NfKind::L2FwdPayloadDrop,
                        NfKind::TouchDropCopy,
                        NfKind::DeepFwd,
                    ]),
                    g.vec(1..4, |g| g.u16(0..u16::MAX)),
                    // Mostly narrow counts, sometimes past the port space
                    // (a wide flow set) to exercise both derivations.
                    if g.bool() {
                        u32::from(g.u16(1..200))
                    } else {
                        g.u32(1..MAX_FLOW_SET_FLOWS)
                    },
                    g.u16(0..60_000),
                    traffic,
                    packet_len,
                );
                if g.bool() {
                    t = t.with_churn(Duration::from_ps(g.u64(1..10_000_000_000)));
                }
                if g.bool() {
                    t = t.with_train(g.u32(2..64));
                }
                t.dscp = Dscp::new(g.u16(0..64) as u8).expect("in range");
                if g.bool() {
                    t = t.with_policy(arbitrary_policy(g));
                }
                if g.bool() {
                    // Always bounded: an all-None SloSpec has no file form.
                    let p99 = g.bool().then(|| g.u64(1..u64::MAX));
                    let drop = (p99.is_none() || g.bool()).then(|| g.unit_f64());
                    t = t.with_slo(SloSpec {
                        max_p99_ns: p99,
                        max_drop_rate: drop,
                    });
                }
                t
            })
            .collect();
        Scenario {
            name: arbitrary_name(g, "s", 0),
            description: arbitrary_name(g, "d", 0),
            policy: *g.choose(&SteeringPolicy::EXTENDED),
            steering: *g.choose(&[FlowSteering::Perfect, FlowSteering::Atr]),
            duration: SimTime::from_ps(g.u64(1..10_000_000_000)),
            drain_grace: Duration::from_ps(g.u64(0..10_000_000_000)),
            perfect_filters: g.bool().then(|| g.usize(1..1 << 20)),
            atr_lifetime: g
                .bool()
                .then(|| Duration::from_ps(g.u64(1..10_000_000_000))),
            pool_idle_flush: g
                .bool()
                .then(|| Duration::from_ps(g.u64(1..10_000_000_000))),
            tenants,
        }
    }

    #[test]
    fn arbitrary_scenarios_round_trip_byte_identically() {
        Cases::new(300).run(|g| {
            let sc = arbitrary_scenario(g);
            let text = to_file_string(&sc);
            let parsed = parse_str(&text)
                .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n--- file\n{text}"));
            assert_eq!(parsed, sc, "--- file\n{text}");
            // Canonical form is a fixed point of serialize ∘ parse.
            assert_eq!(to_file_string(&parsed), text);
        });
    }
}
