//! The LLCAntagonist workload (Table II).
//!
//! Allocates a buffer and performs dependent random line accesses over it,
//! generating LLC pressure and measuring sensitivity to LLC contention.
//! Sec. VI pins it to a core whose MLC is shrunk to 256 KiB so its working
//! set cannot hide in the private cache.

use idio_cache::addr::{Addr, LineAddr};
use idio_engine::rng::SimRng;
use idio_engine::stats::Counter;
use idio_engine::time::Duration;

/// Configuration of the antagonist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntagonistConfig {
    /// Buffer base address.
    pub base: Addr,
    /// Buffer size in bytes.
    pub size_bytes: u64,
    /// Compute cycles between dependent accesses.
    pub think_cycles: u64,
}

impl AntagonistConfig {
    /// An 8 MiB buffer (well beyond the 3 MiB LLC) at `base` with a short
    /// think time.
    pub fn llc_thrashing(base: Addr) -> Self {
        AntagonistConfig {
            base,
            size_bytes: 8 << 20,
            think_cycles: 2,
        }
    }
}

/// Runtime statistics of the antagonist.
#[derive(Debug, Clone, Default)]
pub struct AntagonistStats {
    /// Completed accesses.
    pub accesses: Counter,
    /// Total time spent (service latency + think), in picoseconds.
    pub busy_ps: Counter,
}

impl AntagonistStats {
    /// Mean cycles per access at `freq` — the paper's CPI proxy for the
    /// antagonist (each dependent access stands for a fixed instruction
    /// window).
    pub fn cycles_per_access(&self, ps_per_cycle: u64) -> f64 {
        let n = self.accesses.get();
        if n == 0 {
            return 0.0;
        }
        self.busy_ps.get() as f64 / n as f64 / ps_per_cycle as f64
    }
}

/// The antagonist state machine: yields the next line to access.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::Addr;
/// use idio_engine::rng::SimRng;
/// use idio_stack::antagonist::{AntagonistConfig, LlcAntagonist};
///
/// let mut a = LlcAntagonist::new(
///     AntagonistConfig::llc_thrashing(Addr::new(0x4000_0000)),
///     SimRng::seed_from(1),
/// );
/// let l = a.next_line();
/// assert!(l.base().get() >= 0x4000_0000);
/// ```
#[derive(Debug, Clone)]
pub struct LlcAntagonist {
    cfg: AntagonistConfig,
    lines: u64,
    rng: SimRng,
    stats: AntagonistStats,
}

impl LlcAntagonist {
    /// Creates the antagonist.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is smaller than one cache line.
    pub fn new(cfg: AntagonistConfig, rng: SimRng) -> Self {
        let lines = cfg.size_bytes / 64;
        assert!(lines > 0, "antagonist buffer too small");
        LlcAntagonist {
            cfg,
            lines,
            rng,
            stats: AntagonistStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AntagonistConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &AntagonistStats {
        &self.stats
    }

    /// Zeroes the statistics (after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = AntagonistStats::default();
    }

    /// The next (random, dependent) line to access.
    pub fn next_line(&mut self) -> LineAddr {
        self.cfg.base.line().offset(self.rng.below(self.lines))
    }

    /// Every line of the buffer, for cache warm-up before measurement
    /// (Sec. VI: "we warm up caches by initializing the allocated buffer").
    pub fn warmup_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        let first = self.cfg.base.line();
        (0..self.lines).map(move |i| first.offset(i))
    }

    /// Records a completed access that took `elapsed`.
    pub fn record(&mut self, elapsed: Duration) {
        self.stats.accesses.inc();
        self.stats.busy_ps.add(elapsed.as_ps());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_stay_in_bounds() {
        let cfg = AntagonistConfig {
            base: Addr::new(0x1000),
            size_bytes: 4096,
            think_cycles: 1,
        };
        let mut a = LlcAntagonist::new(cfg, SimRng::seed_from(3));
        for _ in 0..1000 {
            let l = a.next_line();
            assert!(l.base().get() >= 0x1000);
            assert!(l.base().get() < 0x1000 + 4096);
        }
    }

    #[test]
    fn warmup_covers_every_line_once() {
        let cfg = AntagonistConfig {
            base: Addr::new(0x2000),
            size_bytes: 640,
            think_cycles: 1,
        };
        let a = LlcAntagonist::new(cfg, SimRng::seed_from(3));
        let lines: Vec<_> = a.warmup_lines().collect();
        assert_eq!(lines.len(), 10);
        assert_eq!(lines[0], Addr::new(0x2000).line());
        assert_eq!(lines[9], Addr::new(0x2000 + 9 * 64).line());
    }

    #[test]
    fn cpi_proxy_computation() {
        let cfg = AntagonistConfig::llc_thrashing(Addr::new(0));
        let mut a = LlcAntagonist::new(cfg, SimRng::seed_from(3));
        a.record(Duration::from_ns(10));
        a.record(Duration::from_ns(20));
        // 15 ns mean at 333 ps/cycle = ~45 cycles.
        let cpi = a.stats().cycles_per_access(333);
        assert!((cpi - 45.0).abs() < 0.2, "{cpi}");
    }

    #[test]
    fn deterministic_across_seeds() {
        let cfg = AntagonistConfig::llc_thrashing(Addr::new(0));
        let mut a = LlcAntagonist::new(cfg, SimRng::seed_from(7));
        let mut b = LlcAntagonist::new(cfg, SimRng::seed_from(7));
        for _ in 0..100 {
            assert_eq!(a.next_line(), b.next_line());
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_buffer_rejected() {
        let cfg = AntagonistConfig {
            base: Addr::new(0),
            size_bytes: 32,
            think_cycles: 1,
        };
        let _ = LlcAntagonist::new(cfg, SimRng::seed_from(0));
    }
}
