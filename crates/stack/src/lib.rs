//! # idio-stack
//!
//! The DPDK-like userspace software stack of the IDIO reproduction: the
//! Table II network functions expressed as per-packet memory-access
//! programs (descriptor read, mbuf metadata write, header/payload touches,
//! zero-copy TX), polling-mode-driver batch parameters, the LLCAntagonist
//! contention workload, and the parametric core timing model that converts
//! cache hit levels into service time.
//!
//! # Examples
//!
//! ```
//! use idio_cache::addr::Addr;
//! use idio_stack::nf::{NfKind, PacketAction, PacketCtx};
//!
//! let ctx = PacketCtx {
//!     buf: Addr::new(0x10000),
//!     desc: Addr::new(0x20000),
//!     meta: Addr::new(0x30000),
//!     app: Addr::new(0x40000),
//!     len: 1514,
//! };
//! let work = NfKind::L2Fwd.packet_work(&ctx);
//! assert_eq!(work.action, PacketAction::Tx { lines: 24 });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antagonist;
pub mod nf;
pub mod pmd;
pub mod timing;

/// Descriptor bytes used when constructing NF programs (kept in sync with
/// `idio_nic::ring::DESC_BYTES`).
pub(crate) const DESC_BYTES_FOR_WORK: u64 = idio_nic::ring::DESC_BYTES;

pub use antagonist::{AntagonistConfig, AntagonistStats, LlcAntagonist};
pub use nf::{
    ChainStage, MemOp, NfChain, NfKind, PacketAction, PacketCtx, PacketWork, StageMark,
    MAX_CHAIN_STAGES, MBUF_META_BYTES,
};
pub use pmd::{PmdConfig, DEFAULT_BATCH};
pub use timing::{CoreTiming, TimingConfig};
