//! Network functions (Table II) and their memory access patterns.
//!
//! An NF is described by the per-packet *program* it runs against the DMA
//! buffer: which lines it reads and writes (descriptor, mbuf metadata,
//! header, payload) and whether the packet is dropped or transmitted. The
//! full-system simulator executes the program against the cache hierarchy
//! and charges core time per access.

use idio_cache::addr::Addr;
#[cfg(test)]
use idio_net::packet::HEADER_BYTES;

/// Bytes of mbuf metadata the driver maintains per packet (`rte_mbuf`
/// header: two cache lines).
pub const MBUF_META_BYTES: u64 = 128;

/// One memory operation of an NF's per-packet program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Read `lines` cache lines starting at `addr`.
    Read {
        /// Start address (line-aligned by construction).
        addr: Addr,
        /// Number of 64-byte lines.
        lines: u32,
    },
    /// Write `lines` cache lines starting at `addr`.
    Write {
        /// Start address (line-aligned by construction).
        addr: Addr,
        /// Number of 64-byte lines.
        lines: u32,
    },
}

impl MemOp {
    /// Number of lines this operation touches.
    pub fn lines(&self) -> u32 {
        match *self {
            MemOp::Read { lines, .. } | MemOp::Write { lines, .. } => lines,
        }
    }
}

/// What happens to the packet after the program runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketAction {
    /// The packet is dropped; its buffer is free immediately.
    Drop,
    /// The packet is forwarded: the NIC will PCIe-read `lines` lines from
    /// the buffer, and the buffer is free only after the TX completes
    /// (zero-copy run-to-completion).
    Tx {
        /// Lines the NIC reads back out.
        lines: u32,
    },
}

/// A stage boundary inside a chained program: ops up to (but excluding)
/// `op_end` since the previous mark belong to `stage`. Single-NF programs
/// carry no marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageMark {
    /// The stage the preceding ops belong to.
    pub stage: ChainStage,
    /// Index one past the stage's last op in `PacketWork::ops`.
    pub op_end: u32,
}

/// The per-packet program of an NF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketWork {
    /// Memory operations, in program order.
    pub ops: Vec<MemOp>,
    /// Stage boundaries, in program order (empty for single-NF programs).
    /// The executor uses them to attribute service time per chain stage.
    pub marks: Vec<StageMark>,
    /// Post-processing action.
    pub action: PacketAction,
}

impl PacketWork {
    /// An empty program, the starting point for a reusable scratch buffer
    /// (see [`NfKind::packet_work_into`]).
    pub fn empty() -> Self {
        PacketWork {
            ops: Vec::new(),
            marks: Vec::new(),
            action: PacketAction::Drop,
        }
    }
}

impl Default for PacketWork {
    fn default() -> Self {
        PacketWork::empty()
    }
}

/// Addresses of the structures belonging to one received packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCtx {
    /// DMA buffer base.
    pub buf: Addr,
    /// Descriptor record base.
    pub desc: Addr,
    /// mbuf metadata base.
    pub meta: Addr,
    /// Application-space copy buffer base (used by copy-mode stacks).
    pub app: Addr,
    /// Frame length in bytes.
    pub len: u16,
}

impl PacketCtx {
    /// Lines occupied by the frame.
    pub fn frame_lines(&self) -> u32 {
        u32::from(self.len).div_ceil(64)
    }

    /// Lines occupied by the payload (frame minus the header line).
    pub fn payload_lines(&self) -> u32 {
        self.frame_lines().saturating_sub(1)
    }
}

/// Maximum stages of an [`NfChain`] (fixed array so the chain stays
/// `Copy` and hashable in config/scenario types).
pub const MAX_CHAIN_STAGES: usize = 8;

/// One stage of a chained NF service pipeline (5GC²ache's UPF shape).
/// Each stage has its own line-touch profile, so a packet's lines are
/// touched multiple times at different reuse distances — the access shape
/// that makes too-slow buffer recycling produce the paper's DMA-leak and
/// latent-bloat signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainStage {
    /// Header parse: read the header line, stamp the mbuf metadata.
    Parse,
    /// Flow classification: header line + a 2-line flow-table lookup in
    /// application space, result written to the metadata.
    Classify,
    /// Deep inspection: read every frame line (DPI / UPF usage counting).
    Inspect,
    /// Header rewrite in place (GTP-U encap/decap style).
    Rewrite,
    /// Forward: re-read the verdict, stamp the TX header, transmit
    /// zero-copy. Only legal as the last stage.
    Forward,
}

impl ChainStage {
    /// Every stage, in enum order (index order for per-stage telemetry).
    pub const ALL: [ChainStage; 5] = [
        ChainStage::Parse,
        ChainStage::Classify,
        ChainStage::Inspect,
        ChainStage::Rewrite,
        ChainStage::Forward,
    ];

    /// The scenario-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            ChainStage::Parse => "parse",
            ChainStage::Classify => "classify",
            ChainStage::Inspect => "inspect",
            ChainStage::Rewrite => "rewrite",
            ChainStage::Forward => "forward",
        }
    }

    /// Parses a scenario-file spelling.
    pub fn from_name(s: &str) -> Option<ChainStage> {
        ChainStage::ALL.into_iter().find(|st| st.name() == s)
    }

    /// Dense index for per-stage telemetry arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A validated chain of up to [`MAX_CHAIN_STAGES`] stages. Stored as a
/// fixed array (unused slots canonically zero-padded with `Parse`) so the
/// chain is `Copy`, and derived equality/hashing see only canonical forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NfChain {
    stages: [ChainStage; MAX_CHAIN_STAGES],
    len: u8,
}

impl NfChain {
    /// Builds a chain from `stages`.
    ///
    /// # Errors
    ///
    /// Returns a message when the chain is empty, longer than
    /// [`MAX_CHAIN_STAGES`], or places `forward` anywhere but last.
    pub fn new(stages: &[ChainStage]) -> Result<NfChain, String> {
        if stages.is_empty() {
            return Err("chain needs at least one stage".into());
        }
        if stages.len() > MAX_CHAIN_STAGES {
            return Err(format!(
                "chain has {} stages; at most {MAX_CHAIN_STAGES} supported",
                stages.len()
            ));
        }
        if let Some(i) = stages[..stages.len() - 1]
            .iter()
            .position(|s| *s == ChainStage::Forward)
        {
            return Err(format!(
                "'forward' must be the last stage (found at position {})",
                i + 1
            ));
        }
        let mut arr = [ChainStage::Parse; MAX_CHAIN_STAGES];
        arr[..stages.len()].copy_from_slice(stages);
        Ok(NfChain {
            stages: arr,
            len: stages.len() as u8,
        })
    }

    /// The canonical UPF pipeline: parse → classify → rewrite → forward.
    pub fn upf() -> NfChain {
        NfChain::new(&[
            ChainStage::Parse,
            ChainStage::Classify,
            ChainStage::Rewrite,
            ChainStage::Forward,
        ])
        .expect("static chain is valid")
    }

    /// The stages, in execution order.
    pub fn stages(&self) -> &[ChainStage] {
        &self.stages[..usize::from(self.len)]
    }

    /// Whether the chain transmits (ends in `forward`) rather than drops.
    pub fn ends_with_forward(&self) -> bool {
        self.stages().last() == Some(&ChainStage::Forward)
    }

    /// Display name: the canonical UPF pipeline reports as `UpfChain`,
    /// anything else as `Chain`.
    pub fn display_name(&self) -> &'static str {
        if *self == NfChain::upf() {
            "UpfChain"
        } else {
            "Chain"
        }
    }
}

/// The Table II workload selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NfKind {
    /// Receive packets, touch all their data, drop them.
    TouchDrop,
    /// Receive packets, rewrite the Ethernet header, forward them
    /// (zero-copy).
    L2Fwd,
    /// The Sec. VII direct-DRAM variant of L2Fwd: process the header, drop
    /// the payload untouched. Senders mark these flows application class 1.
    L2FwdPayloadDrop,
    /// The Sec. II-B *copy* recycling mode (how the Linux stack works):
    /// the packet is copied out of the DMA buffer into application space
    /// and processed there; the DMA buffer is dead right after the copy.
    TouchDropCopy,
    /// A deep-packet-inspection forwarder (IDS-style, the "deep" NF class
    /// of Sec. II-B): inspects every payload byte, then forwards the same
    /// buffer zero-copy.
    DeepFwd,
    /// A chained service pipeline ([`NfChain`]): every packet runs each
    /// stage's program in order, touching its lines at multiple reuse
    /// distances (5GC²ache's UPF shape).
    Chain(NfChain),
}

impl NfKind {
    /// The workload's display name.
    pub fn name(self) -> &'static str {
        match self {
            NfKind::TouchDrop => "TouchDrop",
            NfKind::L2Fwd => "L2Fwd",
            NfKind::L2FwdPayloadDrop => "L2FwdPayloadDrop",
            NfKind::TouchDropCopy => "TouchDropCopy",
            NfKind::DeepFwd => "DeepFwd",
            NfKind::Chain(c) => c.display_name(),
        }
    }

    /// The chain, when this NF is one.
    pub fn chain(self) -> Option<NfChain> {
        match self {
            NfKind::Chain(c) => Some(c),
            _ => None,
        }
    }

    /// Whether the DMA buffer is recycled only after TX completion.
    pub fn frees_on_tx(self) -> bool {
        match self {
            NfKind::L2Fwd | NfKind::DeepFwd => true,
            NfKind::Chain(c) => c.ends_with_forward(),
            _ => false,
        }
    }

    /// Builds the per-packet program for a packet at `ctx`.
    ///
    /// Allocates a fresh [`PacketWork`]; hot paths that run one program
    /// per packet should keep a scratch buffer and use
    /// [`NfKind::packet_work_into`] instead.
    pub fn packet_work(self, ctx: &PacketCtx) -> PacketWork {
        let mut work = PacketWork::empty();
        self.packet_work_into(ctx, &mut work);
        work
    }

    /// Builds the per-packet program for a packet at `ctx` into `work`,
    /// reusing its `ops` allocation (the buffer is cleared first).
    ///
    /// Every NF starts by reading the descriptor (2 lines) and writing the
    /// mbuf metadata (2 lines) — the PMD's receive-side bookkeeping.
    pub fn packet_work_into(self, ctx: &PacketCtx, work: &mut PacketWork) {
        let desc_lines = (crate::DESC_BYTES_FOR_WORK / 64) as u32;
        let meta_lines = (MBUF_META_BYTES / 64) as u32;
        work.marks.clear();
        // Chain-stage marks are staged in a fixed local buffer and flushed
        // after the match (`ops` holds the mutable borrow of `work` until
        // then); the buffer is stack-only so scratch reuse stays
        // allocation-free.
        let mut chain_marks = [StageMark {
            stage: ChainStage::Parse,
            op_end: 0,
        }; MAX_CHAIN_STAGES];
        let mut n_marks = 0usize;
        let ops = &mut work.ops;
        ops.clear();
        ops.push(MemOp::Read {
            addr: ctx.desc,
            lines: desc_lines,
        });
        ops.push(MemOp::Write {
            addr: ctx.meta,
            lines: meta_lines,
        });
        let action = match self {
            NfKind::TouchDrop => {
                // Touch the entire frame, header included.
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: ctx.frame_lines(),
                });
                PacketAction::Drop
            }
            NfKind::L2Fwd => {
                // Inspect and rewrite the Ethernet header in place; the
                // payload is never touched by the core.
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: 1,
                });
                ops.push(MemOp::Write {
                    addr: ctx.buf,
                    lines: 1,
                });
                PacketAction::Tx {
                    lines: ctx.frame_lines(),
                }
            }
            NfKind::L2FwdPayloadDrop => {
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: 1,
                });
                ops.push(MemOp::Write {
                    addr: ctx.buf,
                    lines: 1,
                });
                PacketAction::Drop
            }
            NfKind::DeepFwd => {
                // Inspect the entire frame, rewrite the header, forward.
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: ctx.frame_lines(),
                });
                ops.push(MemOp::Write {
                    addr: ctx.buf,
                    lines: 1,
                });
                PacketAction::Tx {
                    lines: ctx.frame_lines(),
                }
            }
            NfKind::TouchDropCopy => {
                // Copy the frame into application space, then process the
                // copy (the processing touches lines already made private
                // by the copy's writes).
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: ctx.frame_lines(),
                });
                ops.push(MemOp::Write {
                    addr: ctx.app,
                    lines: ctx.frame_lines(),
                });
                ops.push(MemOp::Read {
                    addr: ctx.app,
                    lines: ctx.frame_lines(),
                });
                PacketAction::Drop
            }
            NfKind::Chain(chain) => {
                // The receive-side preamble is attributed to the first
                // stage's segment (its mark covers ops[0..op_end]).
                for &stage in chain.stages() {
                    match stage {
                        ChainStage::Parse => {
                            ops.push(MemOp::Read {
                                addr: ctx.buf,
                                lines: 1,
                            });
                            ops.push(MemOp::Write {
                                addr: ctx.meta,
                                lines: 1,
                            });
                        }
                        ChainStage::Classify => {
                            ops.push(MemOp::Read {
                                addr: ctx.buf,
                                lines: 1,
                            });
                            ops.push(MemOp::Read {
                                addr: ctx.app,
                                lines: 2,
                            });
                            ops.push(MemOp::Write {
                                addr: ctx.meta,
                                lines: 1,
                            });
                        }
                        ChainStage::Inspect => {
                            ops.push(MemOp::Read {
                                addr: ctx.buf,
                                lines: ctx.frame_lines(),
                            });
                        }
                        ChainStage::Rewrite => {
                            ops.push(MemOp::Read {
                                addr: ctx.buf,
                                lines: 1,
                            });
                            ops.push(MemOp::Write {
                                addr: ctx.buf,
                                lines: 1,
                            });
                        }
                        ChainStage::Forward => {
                            ops.push(MemOp::Read {
                                addr: ctx.meta,
                                lines: 1,
                            });
                            ops.push(MemOp::Write {
                                addr: ctx.buf,
                                lines: 1,
                            });
                        }
                    }
                    chain_marks[n_marks] = StageMark {
                        stage,
                        op_end: ops.len() as u32,
                    };
                    n_marks += 1;
                }
                if chain.ends_with_forward() {
                    PacketAction::Tx {
                        lines: ctx.frame_lines(),
                    }
                } else {
                    PacketAction::Drop
                }
            }
        };
        work.marks.extend_from_slice(&chain_marks[..n_marks]);
        work.action = action;
    }
}

impl std::fmt::Display for NfKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(len: u16) -> PacketCtx {
        PacketCtx {
            buf: Addr::new(0x10000),
            desc: Addr::new(0x20000),
            meta: Addr::new(0x30000),
            app: Addr::new(0x40000),
            len,
        }
    }

    #[test]
    fn touchdrop_reads_whole_frame() {
        let w = NfKind::TouchDrop.packet_work(&ctx(1514));
        assert_eq!(w.action, PacketAction::Drop);
        let total: u32 = w.ops.iter().map(MemOp::lines).sum();
        // 2 desc + 2 meta + 24 frame lines.
        assert_eq!(total, 28);
        assert!(matches!(w.ops.last(), Some(MemOp::Read { lines: 24, .. })));
    }

    #[test]
    fn l2fwd_touches_only_the_header() {
        let w = NfKind::L2Fwd.packet_work(&ctx(1024));
        assert_eq!(w.action, PacketAction::Tx { lines: 16 });
        // Buffer accesses: 1 read + 1 write of the header line only.
        let buf_lines: u32 = w
            .ops
            .iter()
            .filter(|op| match op {
                MemOp::Read { addr, .. } | MemOp::Write { addr, .. } => addr.get() == 0x10000,
            })
            .map(MemOp::lines)
            .sum();
        assert_eq!(buf_lines, 2);
        assert!(NfKind::L2Fwd.frees_on_tx());
    }

    #[test]
    fn deepfwd_inspects_everything_and_forwards() {
        let w = NfKind::DeepFwd.packet_work(&ctx(1514));
        assert_eq!(w.action, PacketAction::Tx { lines: 24 });
        // Reads the whole frame (deep inspection) plus desc/meta.
        let read_lines: u32 = w
            .ops
            .iter()
            .filter_map(|op| match op {
                MemOp::Read { lines, .. } => Some(*lines),
                MemOp::Write { .. } => None,
            })
            .sum();
        assert_eq!(read_lines, 2 + 24);
        assert!(NfKind::DeepFwd.frees_on_tx());
        assert_eq!(NfKind::DeepFwd.name(), "DeepFwd");
    }

    #[test]
    fn payload_drop_never_transmits() {
        let w = NfKind::L2FwdPayloadDrop.packet_work(&ctx(1514));
        assert_eq!(w.action, PacketAction::Drop);
        assert!(!NfKind::L2FwdPayloadDrop.frees_on_tx());
    }

    #[test]
    fn scratch_reuse_matches_fresh_build_and_keeps_capacity() {
        let mut scratch = PacketWork::empty();
        // A TouchDropCopy program (5 ops) followed by an L2Fwd program
        // (4 ops) must leave the scratch identical to a fresh build, with
        // no stale tail ops, and must not reallocate on the second fill.
        NfKind::TouchDropCopy.packet_work_into(&ctx(1514), &mut scratch);
        assert_eq!(scratch, NfKind::TouchDropCopy.packet_work(&ctx(1514)));
        let cap = scratch.ops.capacity();
        NfKind::L2Fwd.packet_work_into(&ctx(1024), &mut scratch);
        assert_eq!(scratch, NfKind::L2Fwd.packet_work(&ctx(1024)));
        assert_eq!(scratch.ops.capacity(), cap, "reuse, not reallocation");
    }

    #[test]
    fn header_fits_one_line() {
        // A structural assumption of the classifier (Sec. V-A).
        assert!(u64::from(HEADER_BYTES) <= 64);
    }

    #[test]
    fn small_frame_line_math() {
        let c = ctx(64);
        assert_eq!(c.frame_lines(), 1);
        assert_eq!(c.payload_lines(), 0);
    }

    #[test]
    fn names_match_table2() {
        assert_eq!(NfKind::TouchDrop.name(), "TouchDrop");
        assert_eq!(format!("{}", NfKind::L2Fwd), "L2Fwd");
    }

    #[test]
    fn upf_chain_touches_lines_at_multiple_reuse_distances() {
        let kind = NfKind::Chain(NfChain::upf());
        let w = kind.packet_work(&ctx(1514));
        // Ends in forward => transmits the whole frame, frees on TX.
        assert_eq!(w.action, PacketAction::Tx { lines: 24 });
        assert!(kind.frees_on_tx());
        assert_eq!(kind.name(), "UpfChain");
        // One mark per stage, strictly increasing, covering all ops.
        let stages: Vec<ChainStage> = w.marks.iter().map(|m| m.stage).collect();
        assert_eq!(stages, NfChain::upf().stages());
        assert!(w.marks.windows(2).all(|p| p[0].op_end < p[1].op_end));
        assert_eq!(w.marks.last().unwrap().op_end as usize, w.ops.len());
        // The header line is touched by parse, classify, rewrite, and
        // forward — four distinct reuse distances on the same line.
        let header_touches = w
            .ops
            .iter()
            .filter(|op| match op {
                MemOp::Read { addr, .. } | MemOp::Write { addr, .. } => addr.get() == 0x10000,
            })
            .count();
        assert_eq!(header_touches, 5);
    }

    #[test]
    fn chain_without_forward_drops() {
        let chain = NfChain::new(&[ChainStage::Parse, ChainStage::Inspect]).unwrap();
        let kind = NfKind::Chain(chain);
        let w = kind.packet_work(&ctx(1514));
        assert_eq!(w.action, PacketAction::Drop);
        assert!(!kind.frees_on_tx());
        assert_eq!(kind.name(), "Chain");
        assert_eq!(w.marks.len(), 2);
    }

    #[test]
    fn chain_validation_rejects_bad_shapes() {
        assert!(NfChain::new(&[]).is_err());
        assert!(NfChain::new(&[ChainStage::Parse; MAX_CHAIN_STAGES + 1]).is_err());
        let err = NfChain::new(&[ChainStage::Forward, ChainStage::Parse]).unwrap_err();
        assert!(err.contains("last stage"), "{err}");
        // Max-length chains without forward are fine.
        assert!(NfChain::new(&[ChainStage::Inspect; MAX_CHAIN_STAGES]).is_ok());
    }

    #[test]
    fn chain_padding_is_canonical_for_eq_and_hash() {
        let a = NfChain::new(&[ChainStage::Rewrite]).unwrap();
        let b = NfChain::new(&[ChainStage::Rewrite]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, NfChain::new(&[ChainStage::Rewrite; 2]).unwrap());
        assert_eq!(
            ChainStage::from_name("classify"),
            Some(ChainStage::Classify)
        );
        assert_eq!(ChainStage::from_name("nope"), None);
        for s in ChainStage::ALL {
            assert_eq!(ChainStage::from_name(s.name()), Some(s));
        }
    }

    #[test]
    fn scratch_reuse_clears_stale_chain_marks() {
        let mut scratch = PacketWork::empty();
        NfKind::Chain(NfChain::upf()).packet_work_into(&ctx(1514), &mut scratch);
        assert_eq!(scratch.marks.len(), 4);
        NfKind::L2Fwd.packet_work_into(&ctx(1024), &mut scratch);
        assert!(scratch.marks.is_empty(), "marks from the chain must clear");
        assert_eq!(scratch, NfKind::L2Fwd.packet_work(&ctx(1024)));
    }
}
