//! Network functions (Table II) and their memory access patterns.
//!
//! An NF is described by the per-packet *program* it runs against the DMA
//! buffer: which lines it reads and writes (descriptor, mbuf metadata,
//! header, payload) and whether the packet is dropped or transmitted. The
//! full-system simulator executes the program against the cache hierarchy
//! and charges core time per access.

use idio_cache::addr::Addr;
#[cfg(test)]
use idio_net::packet::HEADER_BYTES;

/// Bytes of mbuf metadata the driver maintains per packet (`rte_mbuf`
/// header: two cache lines).
pub const MBUF_META_BYTES: u64 = 128;

/// One memory operation of an NF's per-packet program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Read `lines` cache lines starting at `addr`.
    Read {
        /// Start address (line-aligned by construction).
        addr: Addr,
        /// Number of 64-byte lines.
        lines: u32,
    },
    /// Write `lines` cache lines starting at `addr`.
    Write {
        /// Start address (line-aligned by construction).
        addr: Addr,
        /// Number of 64-byte lines.
        lines: u32,
    },
}

impl MemOp {
    /// Number of lines this operation touches.
    pub fn lines(&self) -> u32 {
        match *self {
            MemOp::Read { lines, .. } | MemOp::Write { lines, .. } => lines,
        }
    }
}

/// What happens to the packet after the program runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketAction {
    /// The packet is dropped; its buffer is free immediately.
    Drop,
    /// The packet is forwarded: the NIC will PCIe-read `lines` lines from
    /// the buffer, and the buffer is free only after the TX completes
    /// (zero-copy run-to-completion).
    Tx {
        /// Lines the NIC reads back out.
        lines: u32,
    },
}

/// The per-packet program of an NF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketWork {
    /// Memory operations, in program order.
    pub ops: Vec<MemOp>,
    /// Post-processing action.
    pub action: PacketAction,
}

impl PacketWork {
    /// An empty program, the starting point for a reusable scratch buffer
    /// (see [`NfKind::packet_work_into`]).
    pub fn empty() -> Self {
        PacketWork {
            ops: Vec::new(),
            action: PacketAction::Drop,
        }
    }
}

impl Default for PacketWork {
    fn default() -> Self {
        PacketWork::empty()
    }
}

/// Addresses of the structures belonging to one received packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCtx {
    /// DMA buffer base.
    pub buf: Addr,
    /// Descriptor record base.
    pub desc: Addr,
    /// mbuf metadata base.
    pub meta: Addr,
    /// Application-space copy buffer base (used by copy-mode stacks).
    pub app: Addr,
    /// Frame length in bytes.
    pub len: u16,
}

impl PacketCtx {
    /// Lines occupied by the frame.
    pub fn frame_lines(&self) -> u32 {
        u32::from(self.len).div_ceil(64)
    }

    /// Lines occupied by the payload (frame minus the header line).
    pub fn payload_lines(&self) -> u32 {
        self.frame_lines().saturating_sub(1)
    }
}

/// The Table II workload selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NfKind {
    /// Receive packets, touch all their data, drop them.
    TouchDrop,
    /// Receive packets, rewrite the Ethernet header, forward them
    /// (zero-copy).
    L2Fwd,
    /// The Sec. VII direct-DRAM variant of L2Fwd: process the header, drop
    /// the payload untouched. Senders mark these flows application class 1.
    L2FwdPayloadDrop,
    /// The Sec. II-B *copy* recycling mode (how the Linux stack works):
    /// the packet is copied out of the DMA buffer into application space
    /// and processed there; the DMA buffer is dead right after the copy.
    TouchDropCopy,
    /// A deep-packet-inspection forwarder (IDS-style, the "deep" NF class
    /// of Sec. II-B): inspects every payload byte, then forwards the same
    /// buffer zero-copy.
    DeepFwd,
}

impl NfKind {
    /// The workload's display name.
    pub fn name(self) -> &'static str {
        match self {
            NfKind::TouchDrop => "TouchDrop",
            NfKind::L2Fwd => "L2Fwd",
            NfKind::L2FwdPayloadDrop => "L2FwdPayloadDrop",
            NfKind::TouchDropCopy => "TouchDropCopy",
            NfKind::DeepFwd => "DeepFwd",
        }
    }

    /// Whether the DMA buffer is recycled only after TX completion.
    pub fn frees_on_tx(self) -> bool {
        matches!(self, NfKind::L2Fwd | NfKind::DeepFwd)
    }

    /// Builds the per-packet program for a packet at `ctx`.
    ///
    /// Allocates a fresh [`PacketWork`]; hot paths that run one program
    /// per packet should keep a scratch buffer and use
    /// [`NfKind::packet_work_into`] instead.
    pub fn packet_work(self, ctx: &PacketCtx) -> PacketWork {
        let mut work = PacketWork::empty();
        self.packet_work_into(ctx, &mut work);
        work
    }

    /// Builds the per-packet program for a packet at `ctx` into `work`,
    /// reusing its `ops` allocation (the buffer is cleared first).
    ///
    /// Every NF starts by reading the descriptor (2 lines) and writing the
    /// mbuf metadata (2 lines) — the PMD's receive-side bookkeeping.
    pub fn packet_work_into(self, ctx: &PacketCtx, work: &mut PacketWork) {
        let desc_lines = (crate::DESC_BYTES_FOR_WORK / 64) as u32;
        let meta_lines = (MBUF_META_BYTES / 64) as u32;
        let ops = &mut work.ops;
        ops.clear();
        ops.push(MemOp::Read {
            addr: ctx.desc,
            lines: desc_lines,
        });
        ops.push(MemOp::Write {
            addr: ctx.meta,
            lines: meta_lines,
        });
        let action = match self {
            NfKind::TouchDrop => {
                // Touch the entire frame, header included.
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: ctx.frame_lines(),
                });
                PacketAction::Drop
            }
            NfKind::L2Fwd => {
                // Inspect and rewrite the Ethernet header in place; the
                // payload is never touched by the core.
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: 1,
                });
                ops.push(MemOp::Write {
                    addr: ctx.buf,
                    lines: 1,
                });
                PacketAction::Tx {
                    lines: ctx.frame_lines(),
                }
            }
            NfKind::L2FwdPayloadDrop => {
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: 1,
                });
                ops.push(MemOp::Write {
                    addr: ctx.buf,
                    lines: 1,
                });
                PacketAction::Drop
            }
            NfKind::DeepFwd => {
                // Inspect the entire frame, rewrite the header, forward.
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: ctx.frame_lines(),
                });
                ops.push(MemOp::Write {
                    addr: ctx.buf,
                    lines: 1,
                });
                PacketAction::Tx {
                    lines: ctx.frame_lines(),
                }
            }
            NfKind::TouchDropCopy => {
                // Copy the frame into application space, then process the
                // copy (the processing touches lines already made private
                // by the copy's writes).
                ops.push(MemOp::Read {
                    addr: ctx.buf,
                    lines: ctx.frame_lines(),
                });
                ops.push(MemOp::Write {
                    addr: ctx.app,
                    lines: ctx.frame_lines(),
                });
                ops.push(MemOp::Read {
                    addr: ctx.app,
                    lines: ctx.frame_lines(),
                });
                PacketAction::Drop
            }
        };
        work.action = action;
    }
}

impl std::fmt::Display for NfKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(len: u16) -> PacketCtx {
        PacketCtx {
            buf: Addr::new(0x10000),
            desc: Addr::new(0x20000),
            meta: Addr::new(0x30000),
            app: Addr::new(0x40000),
            len,
        }
    }

    #[test]
    fn touchdrop_reads_whole_frame() {
        let w = NfKind::TouchDrop.packet_work(&ctx(1514));
        assert_eq!(w.action, PacketAction::Drop);
        let total: u32 = w.ops.iter().map(MemOp::lines).sum();
        // 2 desc + 2 meta + 24 frame lines.
        assert_eq!(total, 28);
        assert!(matches!(w.ops.last(), Some(MemOp::Read { lines: 24, .. })));
    }

    #[test]
    fn l2fwd_touches_only_the_header() {
        let w = NfKind::L2Fwd.packet_work(&ctx(1024));
        assert_eq!(w.action, PacketAction::Tx { lines: 16 });
        // Buffer accesses: 1 read + 1 write of the header line only.
        let buf_lines: u32 = w
            .ops
            .iter()
            .filter(|op| match op {
                MemOp::Read { addr, .. } | MemOp::Write { addr, .. } => addr.get() == 0x10000,
            })
            .map(MemOp::lines)
            .sum();
        assert_eq!(buf_lines, 2);
        assert!(NfKind::L2Fwd.frees_on_tx());
    }

    #[test]
    fn deepfwd_inspects_everything_and_forwards() {
        let w = NfKind::DeepFwd.packet_work(&ctx(1514));
        assert_eq!(w.action, PacketAction::Tx { lines: 24 });
        // Reads the whole frame (deep inspection) plus desc/meta.
        let read_lines: u32 = w
            .ops
            .iter()
            .filter_map(|op| match op {
                MemOp::Read { lines, .. } => Some(*lines),
                MemOp::Write { .. } => None,
            })
            .sum();
        assert_eq!(read_lines, 2 + 24);
        assert!(NfKind::DeepFwd.frees_on_tx());
        assert_eq!(NfKind::DeepFwd.name(), "DeepFwd");
    }

    #[test]
    fn payload_drop_never_transmits() {
        let w = NfKind::L2FwdPayloadDrop.packet_work(&ctx(1514));
        assert_eq!(w.action, PacketAction::Drop);
        assert!(!NfKind::L2FwdPayloadDrop.frees_on_tx());
    }

    #[test]
    fn scratch_reuse_matches_fresh_build_and_keeps_capacity() {
        let mut scratch = PacketWork::empty();
        // A TouchDropCopy program (5 ops) followed by an L2Fwd program
        // (4 ops) must leave the scratch identical to a fresh build, with
        // no stale tail ops, and must not reallocate on the second fill.
        NfKind::TouchDropCopy.packet_work_into(&ctx(1514), &mut scratch);
        assert_eq!(scratch, NfKind::TouchDropCopy.packet_work(&ctx(1514)));
        let cap = scratch.ops.capacity();
        NfKind::L2Fwd.packet_work_into(&ctx(1024), &mut scratch);
        assert_eq!(scratch, NfKind::L2Fwd.packet_work(&ctx(1024)));
        assert_eq!(scratch.ops.capacity(), cap, "reuse, not reallocation");
    }

    #[test]
    fn header_fits_one_line() {
        // A structural assumption of the classifier (Sec. V-A).
        assert!(u64::from(HEADER_BYTES) <= 64);
    }

    #[test]
    fn small_frame_line_math() {
        let c = ctx(64);
        assert_eq!(c.frame_lines(), 1);
        assert_eq!(c.payload_lines(), 0);
    }

    #[test]
    fn names_match_table2() {
        assert_eq!(NfKind::TouchDrop.name(), "TouchDrop");
        assert_eq!(format!("{}", NfKind::L2Fwd), "L2Fwd");
    }
}
