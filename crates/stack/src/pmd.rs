//! Polling-mode-driver parameters and batch bookkeeping.
//!
//! DPDK applications poll their receive rings and process packets in
//! batches (default 32) to amortise driver overhead and improve locality
//! (Sec. III, observation 1). The event-driven poll loop itself lives in
//! the full-system simulator; this module holds its parameters and the
//! per-core batch accounting used to decide when buffers are freed.

/// DPDK's default receive batch size.
pub const DEFAULT_BATCH: u32 = 32;

/// Polling-mode-driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmdConfig {
    /// Maximum packets taken per `rx_burst` call.
    pub batch_size: u32,
}

impl PmdConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when the batch size is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_size == 0 {
            return Err("batch size must be positive".into());
        }
        Ok(())
    }
}

impl Default for PmdConfig {
    fn default() -> Self {
        PmdConfig {
            batch_size: DEFAULT_BATCH,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_dpdk() {
        assert_eq!(PmdConfig::default().batch_size, 32);
        assert!(PmdConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_batch_rejected() {
        let cfg = PmdConfig { batch_size: 0 };
        assert!(cfg.validate().is_err());
    }
}
