//! The parametric core timing model.
//!
//! The paper's evaluation runs an out-of-order aarch64 core in gem5; here a
//! core is a service-time model: each line access costs a latency decided
//! by where it hit, divided by a memory-level-parallelism (MLP) factor for
//! levels the core can overlap, plus a small per-line compute cost. The
//! constants are calibrated (see `DESIGN.md`) so the CPU keeps up with
//! 10 Gbps/core, roughly matches 25 Gbps, and falls behind 100 Gbps — the
//! regime structure all of the paper's burst observations depend on.

use idio_cache::hierarchy::HitLevel;
use idio_engine::time::{Duration, Freq};

/// Timing-model parameters, in core cycles at [`TimingConfig::freq`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Core frequency (Table I: 3 GHz).
    pub freq: Freq,
    /// L1D hit cost.
    pub l1_cycles: u64,
    /// MLC hit cost (Table I: 12 CC plus lookup overheads).
    pub mlc_cycles: u64,
    /// LLC hit cost including the mesh round trip.
    pub llc_cycles: u64,
    /// Cache-to-cache transfer cost.
    pub remote_cycles: u64,
    /// Extra cycles on an LLC miss before DRAM takes over (miss handling).
    pub llc_miss_overhead_cycles: u64,
    /// Memory-level parallelism applied to DRAM accesses (sequential
    /// buffer touching is prefetch/overlap friendly).
    pub dram_mlp: u64,
    /// Per-line compute cost (load + checksum-ish work).
    pub per_line_work_cycles: u64,
    /// Fixed per-packet software overhead (descriptor parsing, mbuf
    /// bookkeeping, API crossing).
    pub per_packet_cycles: u64,
    /// Cost of one empty PMD poll iteration.
    pub poll_cycles: u64,
    /// Fixed cost of a non-empty `rx_burst` call (amortised over a batch).
    pub batch_cycles: u64,
    /// Cost of one self-invalidate instruction (per line).
    pub invalidate_cycles: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            freq: Freq::from_ghz(3.0),
            l1_cycles: 2,
            mlc_cycles: 14,
            llc_cycles: 60,
            remote_cycles: 80,
            llc_miss_overhead_cycles: 20,
            dram_mlp: 4,
            per_line_work_cycles: 6,
            per_packet_cycles: 300,
            poll_cycles: 60,
            batch_cycles: 80,
            invalidate_cycles: 1,
        }
    }
}

/// Computes access and software costs from a [`TimingConfig`].
///
/// # Examples
///
/// ```
/// use idio_cache::hierarchy::HitLevel;
/// use idio_stack::timing::{CoreTiming, TimingConfig};
///
/// let t = CoreTiming::new(TimingConfig::default());
/// let mlc = t.access_cost(HitLevel::Mlc, None);
/// let llc = t.access_cost(HitLevel::Llc, None);
/// assert!(llc > mlc, "LLC residency costs more than MLC residency");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CoreTiming {
    cfg: TimingConfig,
}

impl CoreTiming {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `dram_mlp` is zero.
    pub fn new(cfg: TimingConfig) -> Self {
        assert!(cfg.dram_mlp > 0, "MLP factor must be positive");
        CoreTiming { cfg }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &TimingConfig {
        &self.cfg
    }

    fn cycles(&self, c: u64) -> Duration {
        self.cfg.freq.cycles_to_duration(c)
    }

    /// Cost of one demand line access that hit at `level`. For
    /// [`HitLevel::Dram`], `dram_latency` is the memory model's
    /// queue-aware completion latency for this request.
    pub fn access_cost(&self, level: HitLevel, dram_latency: Option<Duration>) -> Duration {
        let work = self.cycles(self.cfg.per_line_work_cycles);
        match level {
            HitLevel::L1 => self.cycles(self.cfg.l1_cycles) + work,
            HitLevel::Mlc => self.cycles(self.cfg.mlc_cycles) + work,
            HitLevel::Llc => self.cycles(self.cfg.llc_cycles) + work,
            HitLevel::RemoteMlc => self.cycles(self.cfg.remote_cycles) + work,
            HitLevel::Dram => {
                let dram = dram_latency.unwrap_or_else(|| Duration::from_ns(52));
                let overlapped = Duration::from_ps(dram.as_ps() / self.cfg.dram_mlp);
                self.cycles(self.cfg.llc_miss_overhead_cycles) + overlapped + work
            }
        }
    }

    /// Cost of one *dependent* line access (pointer-chasing style, as the
    /// LLCAntagonist performs): DRAM latency is fully exposed, with no
    /// memory-level-parallelism overlap.
    pub fn access_cost_dependent(
        &self,
        level: HitLevel,
        dram_latency: Option<Duration>,
    ) -> Duration {
        match level {
            HitLevel::Dram => {
                let dram = dram_latency.unwrap_or_else(|| Duration::from_ns(52));
                self.cycles(self.cfg.llc_miss_overhead_cycles)
                    + dram
                    + self.cycles(self.cfg.per_line_work_cycles)
            }
            other => self.access_cost(other, None),
        }
    }

    /// Fixed per-packet software cost.
    pub fn per_packet(&self) -> Duration {
        self.cycles(self.cfg.per_packet_cycles)
    }

    /// Cost of an empty poll iteration.
    pub fn poll(&self) -> Duration {
        self.cycles(self.cfg.poll_cycles)
    }

    /// Fixed cost of a non-empty `rx_burst`.
    pub fn batch(&self) -> Duration {
        self.cycles(self.cfg.batch_cycles)
    }

    /// Cost of self-invalidating `lines` cache lines.
    pub fn invalidate(&self, lines: u32) -> Duration {
        self.cycles(self.cfg.invalidate_cycles * u64::from(lines))
    }
}

impl Default for CoreTiming {
    fn default() -> Self {
        CoreTiming::new(TimingConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ordering_matches_hierarchy() {
        let t = CoreTiming::default();
        let l1 = t.access_cost(HitLevel::L1, None);
        let mlc = t.access_cost(HitLevel::Mlc, None);
        let llc = t.access_cost(HitLevel::Llc, None);
        let remote = t.access_cost(HitLevel::RemoteMlc, None);
        let dram = t.access_cost(HitLevel::Dram, Some(Duration::from_ns(60)));
        assert!(l1 < mlc && mlc < llc && llc < remote);
        // With MLP overlap DRAM may undercut a remote-MLC transfer, but it
        // must stay costlier than an LLC hit.
        assert!(dram > llc);
    }

    #[test]
    fn dram_mlp_overlaps_latency() {
        let serial_cfg = TimingConfig {
            dram_mlp: 1,
            ..TimingConfig::default()
        };
        let serial =
            CoreTiming::new(serial_cfg).access_cost(HitLevel::Dram, Some(Duration::from_ns(80)));
        let mlp4_cfg = TimingConfig {
            dram_mlp: 4,
            ..TimingConfig::default()
        };
        let mlp4 =
            CoreTiming::new(mlp4_cfg).access_cost(HitLevel::Dram, Some(Duration::from_ns(80)));
        assert_eq!(serial - mlp4, Duration::from_ns(60));
    }

    #[test]
    fn regime_structure_holds() {
        // 1514-byte TouchDrop packet: 24 payload + 2 desc + 2 mbuf lines.
        let t = CoreTiming::default();
        let service_mlc = t.per_packet() + t.access_cost(HitLevel::Mlc, None) * 28 + t.batch() / 32;
        let service_llc = t.per_packet()
            + t.access_cost(HitLevel::Llc, None) * 24
            + t.access_cost(HitLevel::Mlc, None) * 4
            + t.batch() / 32;
        let at_100g = idio_engine::time::wire_time(1514, 100.0);
        let at_25g = idio_engine::time::wire_time(1514, 25.0);
        let at_10g = idio_engine::time::wire_time(1514, 10.0);
        // 100 Gbps: even all-MLC service falls behind the wire.
        assert!(service_mlc > at_100g, "{service_mlc} vs {at_100g}");
        // 25 Gbps: MLC residency keeps up, LLC residency does not.
        assert!(service_mlc < at_25g);
        assert!(service_llc > at_25g, "{service_llc} vs {at_25g}");
        // 10 Gbps: even LLC residency keeps up.
        assert!(service_llc < at_10g);
    }

    #[test]
    fn invalidate_cost_scales_with_lines() {
        let t = CoreTiming::default();
        assert_eq!(t.invalidate(24), t.invalidate(12) * 2);
    }

    #[test]
    #[should_panic(expected = "MLP")]
    fn zero_mlp_rejected() {
        let cfg = TimingConfig {
            dram_mlp: 0,
            ..TimingConfig::default()
        };
        let _ = CoreTiming::new(cfg);
    }
}
