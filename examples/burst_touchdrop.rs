//! Burst processing under every steering policy (the paper's Fig. 9
//! scenario): two TouchDrop instances receive 1024-packet bursts of MTU
//! frames at a configurable rate, and we compare the burst-processing time
//! and writeback traffic of DDIO, Invalidate-only, Prefetch-only, Static,
//! and full IDIO.
//!
//! ```text
//! cargo run -p idio-examples --release --bin burst-touchdrop -- [rate_gbps]
//! ```

use idio_core::config::SystemConfig;
use idio_core::policy::SteeringPolicy;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};
use idio_net::gen::{BurstSpec, TrafficPattern};

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);
    let ring = 1024;
    let period = Duration::from_ms(10);
    let spec = BurstSpec::for_ring(ring, 1514, rate, period);
    println!(
        "burst: {} packets at {rate} Gbps (span {}), every {period}",
        ring,
        spec.burst_length(),
    );
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "policy", "mlc_wb", "llc_wb", "prefetches", "self_inval", "exe"
    );

    let mut baseline_exe = None;
    for policy in SteeringPolicy::ALL {
        let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
        cfg.ring_size = ring;
        cfg.duration = SimTime::ZERO + period * 3;
        cfg.drain_grace = period;
        let report = System::new(cfg.with_policy(policy)).run();
        let exe = report.mean_exe_time(1);
        if policy == SteeringPolicy::Ddio {
            baseline_exe = exe;
        }
        let exe_str = match (exe, baseline_exe) {
            (Some(e), Some(b)) => {
                format!("{e} ({:.0}%)", 100.0 * e.as_ps() as f64 / b.as_ps() as f64)
            }
            _ => "-".to_string(),
        };
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>12} {:>10}",
            policy.label(),
            report.totals.mlc_wb,
            report.totals.llc_wb,
            report.totals.prefetch_fills,
            report.totals.self_inval,
            exe_str
        );
    }
    println!(
        "\nExe is the mean burst-processing time (first DMA to last completion),\n\
         normalised to DDIO in parentheses. Try 100, 25 and 10 Gbps."
    );
}
