//! Performance isolation (the paper's Fig. 10/12 co-run scenario): two
//! TouchDrop instances share the LLC with an LLCAntagonist pinned to a
//! third core whose MLC is shrunk to 256 KiB. Under DDIO the NFs' DMA
//! bloating evicts the antagonist's working set; IDIO keeps the network
//! data out of the shared ways and both sides improve.
//!
//! ```text
//! cargo run -p idio-examples --release --bin colocated-antagonist -- [rate_gbps]
//! ```

use idio_core::config::SystemConfig;
use idio_core::policy::SteeringPolicy;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};
use idio_net::gen::{BurstSpec, TrafficPattern};

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);
    let period = Duration::from_ms(5);
    let spec = BurstSpec::for_ring(1024, 1514, rate, period);

    let mut baseline: Option<(f64, Duration)> = None;
    for policy in [SteeringPolicy::Ddio, SteeringPolicy::Idio] {
        let mut cfg =
            SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec)).with_antagonist();
        cfg.duration = SimTime::ZERO + period * 4;
        cfg.drain_grace = period;
        let report = System::new(cfg.with_policy(policy)).run();

        let cpa = report.antagonist_cpa.expect("antagonist ran");
        let exe = report.mean_exe_time(1).expect("bursts completed");
        println!("[{policy}]");
        println!("  antagonist cycles/access: {cpa:.1}");
        println!("  NF burst processing time: {exe}");
        println!(
            "  LLC writebacks: {}   DRAM writes: {}",
            report.totals.llc_wb, report.totals.dram_wr
        );
        if let Some((b_cpa, b_exe)) = baseline {
            println!(
                "  vs DDIO: antagonist {:.1}% faster, NF bursts {:.1}% faster",
                100.0 * (1.0 - cpa / b_cpa),
                100.0 * (1.0 - exe.as_ps() as f64 / b_exe.as_ps() as f64)
            );
        } else {
            baseline = Some((cpa, exe));
        }
        println!();
    }
}
