//! Selective direct DRAM access (IDIO mechanism 3, Sec. VII): a
//! DoS-style shallow firewall (L2FwdPayloadDrop) inspects headers only and
//! drops payloads untouched. The sender marks the flow application class 1
//! via the DSCP field; IDIO then writes the payload lines straight to
//! DRAM, keeping the LLC free for workloads that actually use it.
//!
//! ```text
//! cargo run -p idio-examples --release --bin direct-dram
//! ```

use idio_core::config::SystemConfig;
use idio_core::net::packet::Dscp;
use idio_core::policy::SteeringPolicy;
use idio_core::stack::nf::NfKind;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};
use idio_net::gen::{BurstSpec, TrafficPattern};

fn main() {
    let period = Duration::from_ms(5);
    let spec = BurstSpec::for_ring(1024, 1514, 25.0, period);
    for policy in [SteeringPolicy::Ddio, SteeringPolicy::Idio] {
        let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
        for w in &mut cfg.workloads {
            w.kind = NfKind::L2FwdPayloadDrop;
            // The sending application sets the class-1 code point on its
            // socket (setsockopt on the DS field, Sec. V-A).
            w.dscp = Dscp::CLASS1_DEFAULT;
        }
        cfg.duration = SimTime::ZERO + period * 3;
        cfg.drain_grace = period;
        let report = System::new(cfg.with_policy(policy)).run();

        let payload_lines = report.totals.rx_packets * 23;
        println!("[{policy}]");
        println!(
            "  packets: {}   payload lines delivered: {}",
            report.totals.rx_packets, payload_lines
        );
        println!(
            "  payload lines written directly to DRAM: {}",
            report.hierarchy.shared.dma_direct_dram.get()
        );
        println!(
            "  DDIO way allocations: {}   LLC writebacks: {}",
            report.hierarchy.shared.ddio_allocs.get(),
            report.totals.llc_wb
        );
        println!(
            "  DRAM write bandwidth / RX payload bandwidth: {:.3}",
            report.totals.dram_wr as f64 / payload_lines.max(1) as f64
        );
        println!();
    }
    println!(
        "Under IDIO the DRAM write rate equals the RX payload rate and the\n\
         DDIO ways only carry headers and descriptors — the LLC is isolated\n\
         from the never-read payload stream."
    );
}
