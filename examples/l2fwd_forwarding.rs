//! Zero-copy forwarding (the paper's Fig. 11 scenario): two L2Fwd
//! instances receive 1024-byte frames, rewrite the Ethernet header, and
//! transmit the same buffer back out. Under DDIO the untouched payload
//! churns through the LLC; under IDIO it is admitted to the MLC and the
//! buffer is invalidated once the TX read completes.
//!
//! ```text
//! cargo run -p idio-examples --release --bin l2fwd-forwarding
//! ```

use idio_core::config::SystemConfig;
use idio_core::policy::SteeringPolicy;
use idio_core::stack::nf::NfKind;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};
use idio_net::gen::{BurstSpec, TrafficPattern};

fn main() {
    let period = Duration::from_ms(5);
    let spec = BurstSpec::for_ring(1024, 1024, 25.0, period);
    for policy in [SteeringPolicy::Ddio, SteeringPolicy::Idio] {
        let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
        for w in &mut cfg.workloads {
            w.kind = NfKind::L2Fwd;
            w.packet_len = 1024;
        }
        cfg.duration = SimTime::ZERO + period * 3;
        cfg.drain_grace = period;
        let report = System::new(cfg.with_policy(policy)).run();

        println!("[{policy}]");
        println!(
            "  forwarded: {} packets   ring drops: {}",
            report.totals.completed_packets, report.totals.rx_drops
        );
        println!(
            "  MLC writebacks: {:>8}  (MLC activity under DDIO is headers only)",
            report.totals.mlc_wb
        );
        println!(
            "  LLC writebacks: {:>8}  DRAM writes: {}",
            report.totals.llc_wb, report.totals.dram_wr
        );
        println!(
            "  data admitted to MLC by prefetching: {} lines",
            report.totals.prefetch_fills
        );
        if let Some((core, lat)) = report.latency.first() {
            println!(
                "  {core} forwarding latency: p50 {} / p99 {}",
                lat.p50, lat.p99
            );
        }
        println!();
    }
    println!(
        "IDIO turns the growing LLC-writeback stream of the shallow NF into\n\
         MLC admissions plus post-TX invalidations (Sec. VII, Fig. 11)."
    );
}
