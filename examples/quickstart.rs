//! Quickstart: run the same workload under baseline DDIO and under IDIO
//! and compare the data movement the memory hierarchy sees.
//!
//! ```text
//! cargo run -p idio-examples --release --bin quickstart
//! ```

use idio_core::config::SystemConfig;
use idio_core::policy::SteeringPolicy;
use idio_core::system::System;
use idio_engine::time::SimTime;
use idio_net::gen::TrafficPattern;

fn main() {
    // Two TouchDrop network functions, one per core, each receiving a
    // steady 10 Gbps of MTU-sized frames — the paper's Fig. 13 scenario.
    let traffic = TrafficPattern::Steady { rate_gbps: 10.0 };

    println!(
        "{:-^72}",
        " IDIO quickstart: steady 10 Gbps/core TouchDrop "
    );
    for policy in [SteeringPolicy::Ddio, SteeringPolicy::Idio] {
        let mut cfg = SystemConfig::touchdrop_scenario(2, traffic);
        cfg.duration = SimTime::from_ms(3);
        let report = System::new(cfg.with_policy(policy)).run();

        println!("\n[{policy}]");
        println!(
            "  packets: {} received, {} completed, {} dropped",
            report.totals.rx_packets, report.totals.completed_packets, report.totals.rx_drops
        );
        println!(
            "  MLC writebacks:  {:>8}   (invalidated by DMA instead: {})",
            report.totals.mlc_wb, report.totals.mlc_inval_by_dma
        );
        println!(
            "  LLC writebacks:  {:>8}   DRAM writes: {}",
            report.totals.llc_wb, report.totals.dram_wr
        );
        println!(
            "  self-invalidations: {:>6}   MLC prefetch fills: {}",
            report.totals.self_inval, report.totals.prefetch_fills
        );
        if let Some((core, lat)) = report.latency.first() {
            println!(
                "  {core} latency: p50 {} / p99 {} over {} packets",
                lat.p50, lat.p99, lat.count
            );
        }
    }
    println!(
        "\nIDIO's self-invalidating buffers drop consumed DMA lines instead of\n\
         writing them back — compare the MLC/LLC writeback rows above."
    );
}
