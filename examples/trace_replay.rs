//! Trace-driven replay: record a stochastic arrival sequence, write it to
//! a trace file, read it back, and replay the *same* packets through DDIO
//! and IDIO — apples-to-apples comparison on identical traffic.
//!
//! ```text
//! cargo run -p idio-examples --release --bin trace-replay
//! ```

use idio_core::config::SystemConfig;
use idio_core::net::gen::{FlowSpec, TrafficGen, TrafficPattern};
use idio_core::net::trace::{read_trace, write_trace};
use idio_core::policy::SteeringPolicy;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record: 3 ms of Poisson traffic at 15 Gbps per core.
    let horizon = SimTime::from_ms(3);
    let mut traces = Vec::new();
    for core in 0..2u16 {
        let gen = TrafficGen::new(
            FlowSpec::udp_to_port(5000 + core, 1514),
            TrafficPattern::Poisson {
                rate_gbps: 15.0,
                seed: 0xACE + u64::from(core),
            },
            horizon,
        );
        traces.push(gen.collect::<Vec<_>>());
    }

    // 2. Serialise and re-parse through the on-disk trace format.
    let path = std::env::temp_dir().join("idio_replay.trace");
    {
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        write_trace(&mut file, &traces[0])?;
    }
    let replayed = read_trace(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    println!(
        "recorded {} arrivals to {} and read {} back",
        traces[0].len(),
        path.display(),
        replayed.len()
    );

    // 3. Replay the identical traffic under both policies.
    for policy in [SteeringPolicy::Ddio, SteeringPolicy::Idio] {
        let mut cfg = SystemConfig::touchdrop_scenario(
            2,
            TrafficPattern::Steady { rate_gbps: 15.0 }, // overridden below
        );
        cfg.duration = horizon;
        cfg.drain_grace = Duration::from_ms(2);
        cfg.trace_replays.insert(0, replayed.clone());
        cfg.trace_replays.insert(1, traces[1].clone());
        let report = System::new(cfg.with_policy(policy)).run();
        println!(
            "[{policy}] completed {} / {} packets, mlc_wb {}, llc_wb {}, p99 {}",
            report.totals.completed_packets,
            report.totals.rx_packets,
            report.totals.mlc_wb,
            report.totals.llc_wb,
            report.p99().expect("packets completed"),
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
