//! Determinism guarantees of the sweep orchestrator.
//!
//! Two contracts: (1) the same root seed reproduces identical simulation
//! totals run-to-run, and (2) the serialized figure output is a pure
//! function of the declared cells — byte-identical no matter how many
//! workers execute the sweep.

use idio_bench::json::figures_to_json;
use idio_core::config::SystemConfig;
use idio_core::experiments::{self, Scale};
use idio_core::net::gen::TrafficPattern;
use idio_core::sweep::{
    run_cells, run_figures, run_figures_detailed, FigureSpec, SweepCell, SweepOptions,
};
use idio_engine::telemetry::{records_to_ndjson, TraceFilter};
use idio_engine::time::{Duration, SimTime};

/// A small scenario whose behaviour actually depends on the RNG (the LLC
/// antagonist draws its access pattern from the seeded stream).
fn antagonist_cell(label: &str) -> SweepCell {
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 5.0 })
        .with_antagonist();
    cfg.duration = SimTime::from_us(300);
    cfg.drain_grace = Duration::from_us(100);
    SweepCell::new(label, cfg)
}

#[test]
fn same_root_seed_reproduces_identical_totals() {
    let opts = SweepOptions {
        root_seed: 0xFEED,
        ..SweepOptions::default()
    };
    let first = run_cells(
        vec![antagonist_cell("det/a"), antagonist_cell("det/b")],
        &opts,
    );
    let second = run_cells(
        vec![antagonist_cell("det/a"), antagonist_cell("det/b")],
        &opts,
    );
    for (x, y) in first.iter().zip(&second) {
        assert_eq!(x.seed, y.seed);
        assert_eq!(
            x.report.totals, y.report.totals,
            "rerun diverged for {}",
            x.label
        );
    }
}

#[test]
fn different_root_seeds_derive_different_cell_seeds() {
    let a = run_cells(
        vec![antagonist_cell("det/a")],
        &SweepOptions {
            root_seed: 1,
            ..SweepOptions::default()
        },
    );
    let b = run_cells(
        vec![antagonist_cell("det/a")],
        &SweepOptions {
            root_seed: 2,
            ..SweepOptions::default()
        },
    );
    assert_ne!(a[0].seed, b[0].seed);
}

fn sample_specs() -> Vec<FigureSpec> {
    let scale = Scale::quick();
    vec![
        experiments::fig5_spec(scale),
        experiments::direct_dram_spec(scale),
        experiments::fig13_spec(scale),
    ]
}

#[test]
fn figure_json_is_byte_identical_across_worker_counts() {
    let serial = {
        let (figs, timing) = run_figures(sample_specs(), &SweepOptions::default());
        assert_eq!(timing.jobs, 1);
        figures_to_json(&figs)
    };
    let parallel = {
        let opts = SweepOptions {
            jobs: 4,
            ..SweepOptions::default()
        };
        let (figs, timing) = run_figures(sample_specs(), &opts);
        assert_eq!(timing.jobs, 4);
        figures_to_json(&figs)
    };
    assert_eq!(serial, parallel, "--jobs 1 and --jobs 4 output diverged");
}

/// Like [`antagonist_cell`] but with full tracing on, so the trace
/// contract itself is under test.
fn traced_cell(label: &str) -> SweepCell {
    let mut cell = antagonist_cell(label);
    cell.cfg.trace = TraceFilter::all();
    cell
}

/// Trace records and the metrics snapshot are part of the deterministic
/// output contract: byte-identical run-to-run and across worker counts.
/// This is what makes `simulate --trace` and `repro --metrics` diffable.
#[test]
fn trace_and_metrics_are_byte_identical_across_worker_counts() {
    let cells = || {
        vec![
            traced_cell("trace/a"),
            traced_cell("trace/b"),
            traced_cell("trace/c"),
        ]
    };
    let opts = |jobs| SweepOptions {
        jobs,
        root_seed: 0xFEED,
        ..SweepOptions::default()
    };
    let render = |outcomes: Vec<idio_core::sweep::CellOutcome>| -> Vec<(String, String, String)> {
        outcomes
            .into_iter()
            .map(|o| {
                assert!(!o.report.trace.is_empty(), "trace empty for {}", o.label);
                (
                    o.label,
                    records_to_ndjson(&o.report.trace),
                    o.report.metrics.to_json(),
                )
            })
            .collect()
    };
    let serial = render(run_cells(cells(), &opts(1)));
    let parallel = render(run_cells(cells(), &opts(4)));
    assert_eq!(
        serial, parallel,
        "--jobs 1 and --jobs 4 trace/metrics diverged"
    );
}

/// The per-cell metrics that back `repro --metrics` come out in cell
/// declaration order and are byte-identical across worker counts.
#[test]
fn suite_cell_metrics_are_deterministic_across_worker_counts() {
    let render = |jobs| {
        let opts = SweepOptions {
            jobs,
            ..SweepOptions::default()
        };
        let suite = run_figures_detailed(sample_specs(), &opts);
        suite
            .cells
            .iter()
            .map(|c| (c.label.clone(), c.metrics.to_json()))
            .collect::<Vec<_>>()
    };
    let serial = render(1);
    let parallel = render(4);
    assert!(!serial.is_empty());
    let declared: Vec<String> = sample_specs()
        .iter()
        .flat_map(|s| s.cells.iter().map(|c| c.label.clone()))
        .collect();
    let got: Vec<String> = serial.iter().map(|(l, _)| l.clone()).collect();
    assert_eq!(declared, got, "cells out of declaration order");
    assert_eq!(serial, parallel, "--jobs 1 and --jobs 4 metrics diverged");
}

#[test]
fn suite_timing_covers_every_declared_cell() {
    let specs = sample_specs();
    let declared: Vec<(&'static str, usize)> =
        specs.iter().map(|s| (s.id, s.cells.len())).collect();
    let (_, timing) = run_figures(specs, &SweepOptions::default());
    let measured: Vec<(&'static str, usize)> = timing
        .figures
        .iter()
        .map(|f| (f.id, f.cells.len()))
        .collect();
    assert_eq!(declared, measured);
    assert!(timing.cpu_total() > std::time::Duration::ZERO);
}
