//! End-to-end tests of the extensions beyond the paper's evaluation:
//! copy-mode recycling, the CPU-paced future-work prefetcher, the IAT
//! dynamic-ways baseline, the DMA-bloat occupancy gauge, bounded
//! directories, and alternative replacement policies at system level.

use idio_core::cache::replacement::ReplacementKind;
use idio_core::config::SystemConfig;
use idio_core::net::gen::{BurstSpec, TrafficPattern};
use idio_core::policy::SteeringPolicy;
use idio_core::prefetcher::PrefetchPacing;
use idio_core::stack::nf::NfKind;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};

fn base_cfg(rate: f64) -> SystemConfig {
    let spec = BurstSpec::for_ring(1024, 1514, rate, Duration::from_ms(2));
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
    cfg.duration = SimTime::from_ms(4);
    cfg.drain_grace = Duration::from_ms(2);
    cfg
}

#[test]
fn copy_mode_doubles_ddio_writebacks() {
    let run = |kind| {
        let mut cfg = base_cfg(25.0);
        for w in &mut cfg.workloads {
            w.kind = kind;
        }
        System::new(cfg).run()
    };
    let rtc = run(NfKind::TouchDrop);
    let copy = run(NfKind::TouchDropCopy);
    // The copy stack evicts both the dead DMA lines and the app copies.
    assert!(
        copy.totals.mlc_wb as f64 > 1.8 * rtc.totals.mlc_wb as f64,
        "copy {} vs rtc {}",
        copy.totals.mlc_wb,
        rtc.totals.mlc_wb
    );
    assert_eq!(copy.totals.completed_packets, copy.totals.rx_packets);
}

#[test]
fn copy_mode_idio_removes_only_the_dma_share() {
    let mut cfg = base_cfg(25.0);
    for w in &mut cfg.workloads {
        w.kind = NfKind::TouchDropCopy;
    }
    let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
    // DMA buffers are invalidated (24 lines/packet)...
    assert_eq!(r.totals.self_inval, r.totals.completed_packets * 24);
    // ...but the live application copies still write back.
    assert!(r.totals.mlc_wb > 0, "app-copy writebacks are real data");
}

#[test]
fn cpu_paced_prefetcher_avoids_mlc_flood_at_100g() {
    let queued = System::new(base_cfg(100.0).with_policy(SteeringPolicy::Idio)).run();
    let mut cfg = base_cfg(100.0);
    cfg.prefetcher.pacing = PrefetchPacing::CpuPaced { window_packets: 64 };
    cfg.prefetcher.queue_depth = 64 * 32;
    let paced = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
    // The paced prefetcher never floods the MLC...
    assert_eq!(paced.totals.mlc_wb, 0, "no MLC writebacks under pacing");
    // ...prefetches every line (deep fills recover leaked lines)...
    assert!(paced.totals.prefetch_fills >= queued.totals.prefetch_fills);
    // ...and processes bursts at least as fast (Sec. VII: "will likely
    // provide more benefit").
    let (qe, pe) = (
        queued.mean_exe_time(1).unwrap(),
        paced.mean_exe_time(1).unwrap(),
    );
    assert!(pe <= qe, "paced {pe} vs queued {qe}");
}

#[test]
fn cpu_paced_matches_queued_at_moderate_rates() {
    let queued = System::new(base_cfg(25.0).with_policy(SteeringPolicy::Idio)).run();
    let mut cfg = base_cfg(25.0);
    cfg.prefetcher.pacing = PrefetchPacing::CpuPaced { window_packets: 64 };
    cfg.prefetcher.queue_depth = 64 * 32;
    let paced = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
    assert_eq!(paced.totals.prefetch_fills, queued.totals.prefetch_fills);
    assert_eq!(paced.mean_exe_time(1), queued.mean_exe_time(1));
}

#[test]
fn iat_baseline_runs_without_idio_mechanisms() {
    let r = System::new(base_cfg(25.0).with_policy(SteeringPolicy::IatDynamic)).run();
    assert_eq!(r.totals.self_inval, 0);
    assert_eq!(r.totals.prefetch_fills, 0);
    assert_eq!(r.totals.completed_packets, r.totals.rx_packets);
    // Re-partitioning alone cannot remove the MLC writeback stream — the
    // paper's S1 critique of dynamic DDIO policies.
    let ddio = System::new(base_cfg(25.0)).run();
    assert!(r.totals.mlc_wb >= ddio.totals.mlc_wb * 9 / 10);
}

#[test]
fn bloat_gauge_separates_policies() {
    let run = |policy| {
        let mut cfg =
            SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 10.0 });
        cfg.duration = SimTime::from_ms(3);
        System::new(cfg.with_policy(policy)).run()
    };
    let ddio = run(SteeringPolicy::Ddio);
    let idio = run(SteeringPolicy::Idio);
    let (ds, is_) = (
        ddio.timelines.dma_llc_share.max_value(),
        idio.timelines.dma_llc_share.max_value(),
    );
    assert!(ds > 0.3, "DDIO bloats the LLC with DMA data: {ds}");
    assert!(is_ < 0.1, "IDIO keeps DMA data out of the LLC: {is_}");
}

#[test]
fn alternative_replacement_policies_run_end_to_end() {
    for kind in [ReplacementKind::Srrip, ReplacementKind::Random] {
        let mut cfg = base_cfg(25.0);
        cfg.hierarchy.llc_replacement = kind;
        cfg.hierarchy.private_replacement = kind;
        let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
        assert_eq!(
            r.totals.completed_packets, r.totals.rx_packets,
            "{kind}: all packets complete"
        );
    }
}

#[test]
fn bounded_directory_system_stays_consistent() {
    let mut cfg = base_cfg(25.0);
    cfg.hierarchy.directory_entries = Some(8192);
    let r = System::new(cfg.with_policy(SteeringPolicy::Ddio)).run();
    assert!(
        r.hierarchy.shared.dir_back_invalidations.get() > 0,
        "an 8k-entry directory is under pressure from 2 MLC working sets"
    );
    assert_eq!(r.totals.completed_packets, r.totals.rx_packets);
}

#[test]
fn poisson_traffic_runs_end_to_end() {
    let mut cfg = SystemConfig::touchdrop_scenario(
        2,
        TrafficPattern::Poisson {
            rate_gbps: 10.0,
            seed: 11,
        },
    );
    cfg.duration = SimTime::from_ms(2);
    cfg.drain_grace = Duration::from_ms(1);
    let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
    // ~10 Gbps of MTU frames for 2 ms per core: roughly 1650 packets/core.
    assert!(r.totals.rx_packets > 2500, "{}", r.totals.rx_packets);
    assert_eq!(r.totals.completed_packets, r.totals.rx_packets);
    assert!(
        r.bursts.is_empty(),
        "no burst windows for open-loop traffic"
    );
}

#[test]
fn deepfwd_combines_deep_touch_with_tx() {
    let mut cfg = base_cfg(25.0);
    for w in &mut cfg.workloads {
        w.kind = NfKind::DeepFwd;
    }
    let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
    assert_eq!(r.totals.completed_packets, r.totals.rx_packets);
    // Every frame line is read back out by the NIC for TX.
    assert!(r.hierarchy.shared.pcie_reads.get() >= r.totals.rx_packets * 24);
    // Deep inspection touched everything, so the whole frame was
    // prefetchable; invalidation fires after TX (IncludeLlc scope).
    assert!(r.totals.self_inval >= r.totals.rx_packets * 24);
}

#[test]
fn atr_steering_learns_from_tx_traffic() {
    use idio_core::config::FlowSteering;
    let mut cfg = base_cfg(25.0);
    cfg.steering = FlowSteering::Atr;
    for w in &mut cfg.workloads {
        w.kind = NfKind::L2Fwd;
    }
    let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
    // RSS spreads the flows initially; after the first forwards, ATR pins
    // them and every packet still completes.
    assert_eq!(r.totals.completed_packets, r.totals.rx_packets);
    assert!(r.totals.rx_drops == 0);
}

#[test]
fn atr_without_tx_stays_on_rss() {
    use idio_core::config::FlowSteering;
    let mut cfg = base_cfg(25.0);
    cfg.steering = FlowSteering::Atr;
    // TouchDrop never transmits, so nothing is ever learned — packets
    // keep flowing via RSS and still complete.
    let r = System::new(cfg.with_policy(SteeringPolicy::Ddio)).run();
    assert_eq!(r.totals.completed_packets, r.totals.rx_packets);
}

#[test]
fn misclassified_dscp_degrades_but_stays_correct() {
    use idio_core::net::packet::Dscp;
    // Failure injection: a deep-inspection workload whose sender wrongly
    // marks it class 1. IDIO sends the payload to DRAM, the core then
    // reads it back from memory — slower, but functionally correct.
    let run = |dscp| {
        let mut cfg = base_cfg(25.0);
        for w in &mut cfg.workloads {
            w.dscp = dscp;
        }
        System::new(cfg.with_policy(SteeringPolicy::Idio)).run()
    };
    let good = run(Dscp::BEST_EFFORT);
    let bad = run(Dscp::CLASS1_DEFAULT);
    assert_eq!(bad.totals.completed_packets, bad.totals.rx_packets);
    // The misclassification forces payload round-trips through DRAM.
    assert!(
        bad.totals.dram_rd > 10 * good.totals.dram_rd.max(1),
        "bad {} vs good {}",
        bad.totals.dram_rd,
        good.totals.dram_rd
    );
    assert!(bad.p99().unwrap() > good.p99().unwrap());
}
