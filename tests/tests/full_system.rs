//! End-to-end full-system scenarios spanning every crate: packet
//! conservation, hierarchy invariants under load, and policy behaviour
//! contracts.

use idio_core::config::SystemConfig;
use idio_core::net::gen::{BurstSpec, TrafficPattern};
use idio_core::policy::SteeringPolicy;
use idio_core::report::RunReport;
use idio_core::stack::nf::NfKind;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};

fn bursty(rate: f64) -> TrafficPattern {
    TrafficPattern::Bursty(BurstSpec::for_ring(256, 1514, rate, Duration::from_ms(1)))
}

fn run(policy: SteeringPolicy, rate: f64) -> RunReport {
    let mut cfg = SystemConfig::touchdrop_scenario(2, bursty(rate));
    cfg.ring_size = 256;
    cfg.duration = SimTime::from_ms(2);
    cfg.drain_grace = Duration::from_ms(1);
    System::new(cfg.with_policy(policy)).run()
}

#[test]
fn packets_are_conserved_under_every_policy() {
    for policy in SteeringPolicy::ALL {
        let r = run(policy, 25.0);
        assert_eq!(
            r.totals.rx_packets, r.totals.completed_packets,
            "{policy}: all queued packets complete once traffic stops"
        );
        // 2 bursts x 256 packets x 2 cores.
        assert_eq!(r.totals.rx_packets + r.totals.rx_drops, 1024, "{policy}");
    }
}

#[test]
fn ddio_policy_touches_no_idio_mechanism() {
    let r = run(SteeringPolicy::Ddio, 25.0);
    assert_eq!(r.totals.self_inval, 0);
    assert_eq!(r.totals.prefetch_fills, 0);
    assert_eq!(r.hierarchy.shared.dma_direct_dram.get(), 0);
}

#[test]
fn invalidate_only_removes_all_mlc_writebacks() {
    let r = run(SteeringPolicy::InvalidateOnly, 25.0);
    // Descriptors and mbuf metadata are not invalidated, so a small
    // residue is possible, but buffer writebacks (the dominant stream)
    // must be gone.
    let ddio = run(SteeringPolicy::Ddio, 25.0);
    assert!(
        r.totals.mlc_wb * 10 < ddio.totals.mlc_wb.max(1),
        "invalidate {} vs ddio {}",
        r.totals.mlc_wb,
        ddio.totals.mlc_wb
    );
    assert!(r.totals.self_inval > 0);
    assert_eq!(r.totals.prefetch_fills, 0, "no prefetching in this config");
}

#[test]
fn prefetch_only_admits_data_without_invalidating() {
    let r = run(SteeringPolicy::PrefetchOnly, 25.0);
    assert!(r.totals.prefetch_fills > 0);
    assert_eq!(r.totals.self_inval, 0);
}

/// A full-size (1024-slot) ring configuration: the ring must exceed the
/// 1 MiB MLC for the paper's writeback phenomenon to appear.
fn run_full_ring(policy: SteeringPolicy, rate: f64) -> RunReport {
    let spec = BurstSpec::for_ring(1024, 1514, rate, Duration::from_ms(2));
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
    cfg.duration = SimTime::from_ms(4);
    cfg.drain_grace = Duration::from_ms(2);
    System::new(cfg.with_policy(policy)).run()
}

#[test]
fn idio_reduces_writebacks_and_exe_time_at_25g() {
    let ddio = run_full_ring(SteeringPolicy::Ddio, 25.0);
    let idio = run_full_ring(SteeringPolicy::Idio, 25.0);
    assert!(idio.totals.mlc_wb < ddio.totals.mlc_wb / 2);
    assert!(idio.totals.llc_wb < ddio.totals.llc_wb / 2);
    let (de, ie) = (
        ddio.mean_exe_time(1).unwrap(),
        idio.mean_exe_time(1).unwrap(),
    );
    assert!(ie < de, "idio {ie} vs ddio {de}");
    // p99 latency improves as well (Fig. 12 direction).
    assert!(idio.p99().unwrap() < ddio.p99().unwrap());
}

#[test]
fn hierarchy_invariants_hold_after_every_policy() {
    for policy in SteeringPolicy::ALL {
        let mut cfg = SystemConfig::touchdrop_scenario(2, bursty(100.0));
        cfg.ring_size = 256;
        cfg.duration = SimTime::from_ms(1);
        cfg.drain_grace = Duration::from_ms(1);
        let sys = System::new(cfg.with_policy(policy));
        // run() consumes the system; rebuild and inspect via a fresh one
        // driven to completion through the public API.
        let report = sys.run();
        assert!(report.totals.completed_packets > 0, "{policy}");
    }
}

#[test]
fn l2fwd_frees_buffers_only_after_tx() {
    let mut cfg = SystemConfig::touchdrop_scenario(1, bursty(25.0));
    cfg.ring_size = 256;
    for w in &mut cfg.workloads {
        w.kind = NfKind::L2Fwd;
    }
    cfg.duration = SimTime::from_ms(2);
    cfg.drain_grace = Duration::from_ms(1);
    let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
    // Every received packet was forwarded (PCIe reads cover all lines).
    assert_eq!(r.totals.completed_packets, r.totals.rx_packets);
    assert!(r.hierarchy.shared.pcie_reads.get() >= r.totals.rx_packets * 24);
}

#[test]
fn overload_drops_packets_at_full_ring() {
    // A tiny ring at 100 Gbps with an expensive NF must overflow.
    let spec = BurstSpec::for_ring(1024, 1514, 100.0, Duration::from_ms(5));
    let mut cfg = SystemConfig::touchdrop_scenario(1, TrafficPattern::Bursty(spec));
    cfg.ring_size = 64; // much smaller than the burst
    cfg.duration = SimTime::from_ms(1);
    cfg.drain_grace = Duration::from_ms(1);
    let r = System::new(cfg).run();
    assert!(
        r.totals.rx_drops > 0,
        "64-slot ring under a 1024-packet burst"
    );
    assert_eq!(r.totals.rx_packets, r.totals.completed_packets);
}

#[test]
fn reports_are_deterministic() {
    let make = || {
        let mut cfg = SystemConfig::touchdrop_scenario(2, bursty(25.0)).with_antagonist();
        cfg.ring_size = 256;
        cfg.duration = SimTime::from_ms(1);
        cfg.drain_grace = Duration::from_ms(1);
        System::new(cfg.with_policy(SteeringPolicy::Idio)).run()
    };
    let (a, b) = (make(), make());
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.antagonist_cpa, b.antagonist_cpa);
    assert_eq!(a.timelines.mlc_wb.samples(), b.timelines.mlc_wb.samples());
    assert_eq!(a.bursts.len(), b.bursts.len());
    for (x, y) in a.bursts.iter().zip(&b.bursts) {
        assert_eq!(x, y);
    }
}

#[test]
fn steady_and_bursty_mlc_wb_rates_match_for_ddio() {
    // Sec. VII, Fig. 13: "the MLC writeback rate is the same as the bursty
    // traffic" because it tracks the consumption rate, not the arrival
    // shape. Compare per-completed-packet writebacks.
    let mut s = SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 10.0 });
    s.duration = SimTime::from_ms(3);
    let steady = System::new(s).run();
    let burst = run_full_ring(SteeringPolicy::Ddio, 25.0);
    let per_pkt_steady = steady.totals.mlc_wb as f64 / steady.totals.completed_packets as f64;
    let per_pkt_burst = burst.totals.mlc_wb as f64 / burst.totals.completed_packets as f64;
    // Both around 28 lines/packet once warm; allow cold-start slack.
    assert!(
        (per_pkt_steady - per_pkt_burst).abs() < 10.0,
        "steady {per_pkt_steady:.1} vs bursty {per_pkt_burst:.1}"
    );
}
