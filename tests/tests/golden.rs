//! Golden-report regression harness.
//!
//! Runs a curated subset of the `Scale::quick()` figure suite and diffs
//! the compact JSON (tables only — the raw time series are dropped to
//! keep the goldens reviewable) against the blessed copies under
//! `tests/golden/`. The simulation is deterministic, so any diff is a
//! behaviour change that must be either fixed or explicitly re-blessed:
//!
//! ```text
//! IDIO_BLESS=1 cargo test -p idio-integration-tests --test golden
//! ```
//!
//! The subset covers both tables, a bursty timeline figure (fig5), a
//! forwarding NF (fig11), direct DRAM placement, steady traffic (fig13)
//! and the recycling-mode comparison — one figure per simulation regime —
//! while staying cheap enough for debug-mode CI. The full suite's
//! `--jobs`-independence is covered by the determinism tests.

use std::path::PathBuf;

use idio_bench::experiment_spec;
use idio_bench::json::figure_to_json;
use idio_core::experiments::Scale;
use idio_core::sweep::{run_figures, SweepOptions};

/// Figures under golden protection (experiment names as accepted by the
/// `repro` binary).
const GOLDEN: &[&str] = &[
    "table1",
    "table2",
    "fig5",
    "fig11",
    "direct-dram",
    "fig13",
    "copy-mode",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn blessing() -> bool {
    std::env::var_os("IDIO_BLESS").is_some_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn quick_suite_matches_blessed_goldens() {
    let specs = GOLDEN
        .iter()
        .map(|name| experiment_spec(name, Scale::quick()).expect("known name"))
        .collect();
    // Default options: the same root seed and declaration order the repro
    // binary uses, so goldens match `repro --quick --json` rows.
    let (figures, _) = run_figures(specs, &SweepOptions::default());

    let dir = golden_dir();
    let mut failures = Vec::new();
    for mut figure in figures {
        // Compact form: drop the sampled series, keep identity + table.
        figure.series.clear();
        let rendered = format!("{}\n", figure_to_json(&figure));
        let path = dir.join(format!("{}.json", figure.id));
        if blessing() {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == rendered => {}
            Ok(expected) => failures.push(format!(
                "{}: output diverged from golden.\n--- golden\n{expected}\n--- current\n{rendered}",
                figure.id
            )),
            Err(e) => failures.push(format!(
                "{}: missing golden at {} ({e}); run with IDIO_BLESS=1 to create it",
                figure.id,
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches (IDIO_BLESS=1 re-blesses after intentional changes):\n{}",
        failures.join("\n")
    );
}
