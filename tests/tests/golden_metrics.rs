//! Golden harness for per-cell `repro --metrics` output.
//!
//! Runs the same curated quick-scale figure subset as the figure-JSON
//! goldens (`golden.rs`) and diffs every cell's final metrics snapshot —
//! rendered exactly as `repro --metrics` prints it, one NDJSON line per
//! cell in declaration order — against `tests/golden/metrics.ndjson`.
//! Metric regressions (a counter silently stops incrementing, a gauge
//! changes scale) are caught the same way figure-table regressions
//! already are. Re-bless intentional changes with:
//!
//! ```text
//! IDIO_BLESS=1 cargo test -p idio-integration-tests --test golden_metrics
//! ```

use std::path::PathBuf;

use idio_bench::experiment_spec;
use idio_bench::json::cell_metrics_line;
use idio_core::experiments::Scale;
use idio_core::sweep::{run_figures_detailed, SweepOptions};

/// Same subset as the figure goldens: one figure per simulation regime.
const GOLDEN: &[&str] = &[
    "table1",
    "table2",
    "fig5",
    "fig11",
    "direct-dram",
    "fig13",
    "copy-mode",
];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("metrics.ndjson")
}

fn blessing() -> bool {
    std::env::var_os("IDIO_BLESS").is_some_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn quick_suite_metrics_match_blessed_goldens() {
    let specs = GOLDEN
        .iter()
        .map(|name| experiment_spec(name, Scale::quick()).expect("known name"))
        .collect();
    // Default options: same root seed and declaration order as the repro
    // binary, so the goldens match `repro --quick --metrics` lines.
    let out = run_figures_detailed(specs, &SweepOptions::default());
    let rendered: String = out
        .cells
        .iter()
        .map(|c| format!("{}\n", cell_metrics_line(c)))
        .collect();

    let path = golden_path();
    if blessing() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let expected = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "missing metrics golden at {} ({e}); run with IDIO_BLESS=1 to create it",
            path.display()
        ),
    };
    if expected == rendered {
        return;
    }
    // Point at the first diverging cell line to keep the failure readable;
    // a full 90-cell dump would drown the actual regression.
    let mut exp_lines = expected.lines();
    let mut got_lines = rendered.lines();
    let mut line_no = 1usize;
    loop {
        match (exp_lines.next(), got_lines.next()) {
            (Some(e), Some(g)) if e == g => line_no += 1,
            (e, g) => panic!(
                "metrics output diverged from golden at line {line_no} \
                 (IDIO_BLESS=1 re-blesses after intentional changes):\n\
                 --- golden\n{}\n--- current\n{}",
                e.unwrap_or("<end of file>"),
                g.unwrap_or("<end of file>"),
            ),
        }
    }
}
