//! Golden harness for the built-in scenario reports.
//!
//! Runs every built-in scenario of `idio-scenario` (on 4 workers — the
//! reports are `--jobs`-independent by construction) and diffs the JSON
//! rendering against the blessed copies under
//! `tests/golden/scenario_<name>.json`. Any diff is a behaviour change
//! that must be either fixed or explicitly re-blessed:
//!
//! ```text
//! IDIO_BLESS=1 cargo test -p idio-integration-tests --test golden_scenarios
//! ```
//!
//! The same files back the CI smoke step, which runs the `scenario`
//! binary and byte-compares its output against the golden.

use std::path::PathBuf;

use idio_core::sweep::SweepOptions;
use idio_scenario::{builtins, run_scenario};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn blessing() -> bool {
    std::env::var_os("IDIO_BLESS").is_some_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn builtin_scenarios_match_blessed_goldens() {
    let opts = SweepOptions {
        jobs: 4,
        ..SweepOptions::default()
    };
    let dir = golden_dir();
    let mut failures = Vec::new();
    for scenario in builtins() {
        let report = run_scenario(&scenario, &opts).expect("built-in scenarios are valid");
        let rendered = format!("{}\n", report.to_json());
        let path = dir.join(format!("scenario_{}.json", scenario.name));
        if blessing() {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == rendered => {}
            Ok(expected) => failures.push(format!(
                "{}: report diverged from golden.\n--- golden\n{expected}\n--- current\n{rendered}",
                scenario.name
            )),
            Err(e) => failures.push(format!(
                "{}: missing golden at {} ({e}); run with IDIO_BLESS=1 to create it",
                scenario.name,
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "scenario golden mismatches (IDIO_BLESS=1 re-blesses after intentional changes):\n{}",
        failures.join("\n")
    );
}
