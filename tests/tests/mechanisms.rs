//! End-to-end verification of each IDIO mechanism against the baseline,
//! exercising the NIC classifier → TLP metadata → controller → hierarchy
//! chain through the public API.

use idio_core::config::SystemConfig;
use idio_core::net::gen::{BurstSpec, TrafficPattern};
use idio_core::net::packet::Dscp;
use idio_core::policy::SteeringPolicy;
use idio_core::stack::nf::NfKind;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};

fn burst_cfg(rate: f64, policy: SteeringPolicy) -> SystemConfig {
    let spec = BurstSpec::for_ring(1024, 1514, rate, Duration::from_ms(2));
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
    cfg.duration = SimTime::from_ms(4);
    cfg.drain_grace = Duration::from_ms(2);
    cfg.with_policy(policy)
}

// ---- mechanism 1: self-invalidating I/O buffers ---------------------------

#[test]
fn m1_invalidation_eliminates_dram_write_bandwidth() {
    let ddio = System::new(burst_cfg(25.0, SteeringPolicy::Ddio)).run();
    let idio = System::new(burst_cfg(25.0, SteeringPolicy::Idio)).run();
    assert!(ddio.totals.dram_wr > 10_000, "baseline leaks to DRAM");
    // Fig. 10: "IDIO almost eliminates DRAM write bandwidth".
    assert!(
        idio.totals.dram_wr * 50 < ddio.totals.dram_wr,
        "idio {} vs ddio {}",
        idio.totals.dram_wr,
        ddio.totals.dram_wr
    );
}

#[test]
fn m1_invalidations_cover_consumed_buffers() {
    let r = System::new(burst_cfg(25.0, SteeringPolicy::Idio)).run();
    // TouchDrop invalidates 24 lines per 1514-byte packet.
    assert_eq!(r.totals.self_inval, r.totals.completed_packets * 24);
}

// ---- mechanism 2: network-driven MLC prefetching ---------------------------

#[test]
fn m2_fsm_regulates_mlc_pressure_at_100g() {
    let stat = System::new(burst_cfg(100.0, SteeringPolicy::StaticIdio)).run();
    let idio = System::new(burst_cfg(100.0, SteeringPolicy::Idio)).run();
    // Sec. VII: Static lets the MLC writeback rate exceed mlcTHR (50 MTPS
    // per core); dynamic IDIO clamps it by disabling prefetching.
    let static_peak = stat.timelines.mlc_wb.max_value();
    let idio_peak = idio.timelines.mlc_wb.max_value();
    assert!(static_peak > 150.0, "static peak {static_peak}");
    assert!(
        idio_peak < static_peak / 1.5,
        "idio {idio_peak} vs static {static_peak}"
    );
}

#[test]
fn m2_static_equals_idio_at_moderate_rates() {
    // Sec. VII: "For lower burst rates like 25Gbps, there is no difference
    // between Static and IDIO".
    let stat = System::new(burst_cfg(25.0, SteeringPolicy::StaticIdio)).run();
    let idio = System::new(burst_cfg(25.0, SteeringPolicy::Idio)).run();
    assert_eq!(stat.totals.prefetch_fills, idio.totals.prefetch_fills);
    assert_eq!(stat.totals.mlc_wb, idio.totals.mlc_wb);
    assert_eq!(stat.mean_exe_time(1), idio.mean_exe_time(1));
}

#[test]
fn m2_headers_are_prefetched_even_when_payload_is_not() {
    // At a rate below rxBurstTHR no bursts are signalled, so payload stays
    // in the LLC; headers still go to the MLC.
    let mut cfg = SystemConfig::touchdrop_scenario(1, TrafficPattern::Steady { rate_gbps: 5.0 });
    cfg.classifier.rx_burst_thr_bytes = u32::MAX; // never signal a burst
    cfg.duration = SimTime::from_ms(1);
    let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
    assert!(r.totals.prefetch_fills > 0, "headers still admitted");
    // Only ~1 line per packet is prefetched (header), not the payload.
    assert!(
        r.totals.prefetch_fills < r.totals.rx_packets * 3,
        "{} fills for {} packets",
        r.totals.prefetch_fills,
        r.totals.rx_packets
    );
}

// ---- mechanism 3: selective direct DRAM access ------------------------------

#[test]
fn m3_class1_payload_bypasses_the_llc() {
    let make = |policy| {
        let spec = BurstSpec::for_ring(512, 1514, 25.0, Duration::from_ms(1));
        let mut cfg = SystemConfig::touchdrop_scenario(1, TrafficPattern::Bursty(spec));
        cfg.ring_size = 512;
        for w in &mut cfg.workloads {
            w.kind = NfKind::L2FwdPayloadDrop;
            w.dscp = Dscp::CLASS1_DEFAULT;
        }
        cfg.duration = SimTime::from_ms(2);
        cfg.drain_grace = Duration::from_ms(1);
        System::new(cfg.with_policy(policy)).run()
    };
    let idio = make(SteeringPolicy::Idio);
    // Every payload line (23 per packet) goes straight to DRAM.
    assert_eq!(
        idio.hierarchy.shared.dma_direct_dram.get(),
        idio.totals.rx_packets * 23
    );
    assert_eq!(idio.totals.llc_wb, 0, "LLC untouched by the payload");
    // DDIO without the mechanism thrashes the LLC instead.
    let ddio = make(SteeringPolicy::Ddio);
    assert_eq!(ddio.hierarchy.shared.dma_direct_dram.get(), 0);
    assert!(ddio.totals.llc_wb > 10_000);
}

#[test]
fn m3_class1_header_stays_on_chip() {
    let spec = BurstSpec::for_ring(512, 1514, 25.0, Duration::from_ms(1));
    let mut cfg = SystemConfig::touchdrop_scenario(1, TrafficPattern::Bursty(spec));
    cfg.ring_size = 512;
    for w in &mut cfg.workloads {
        w.kind = NfKind::L2FwdPayloadDrop;
        w.dscp = Dscp::CLASS1_DEFAULT;
    }
    cfg.duration = SimTime::from_ms(2);
    cfg.drain_grace = Duration::from_ms(1);
    let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
    // Headers are prefetched into the MLC (1 per packet), so header reads
    // hit on-chip. The only DRAM reads are the cold-start write-allocate
    // fills of the mbuf metadata (2 lines per ring slot, first pass only).
    assert!(r.totals.prefetch_fills >= r.totals.rx_packets);
    let cold_meta_fills = 2 * 512 + 64;
    assert!(
        r.totals.dram_rd <= cold_meta_fills,
        "dram_rd {} exceeds cold-start bound {}",
        r.totals.dram_rd,
        cold_meta_fills
    );
}

// ---- synergy ----------------------------------------------------------------

#[test]
fn synergy_beats_individual_mechanisms_at_25g() {
    // Fig. 9: invalidation alone removes writebacks but not execution
    // time; prefetching alone shortens execution but keeps writebacks;
    // both together do both.
    let inv = System::new(burst_cfg(25.0, SteeringPolicy::InvalidateOnly)).run();
    let pf = System::new(burst_cfg(25.0, SteeringPolicy::PrefetchOnly)).run();
    let idio = System::new(burst_cfg(25.0, SteeringPolicy::Idio)).run();

    let exe = |r: &idio_core::report::RunReport| r.mean_exe_time(1).unwrap();
    assert!(exe(&idio) < exe(&inv), "idio beats invalidate-only exe");
    assert!(
        idio.totals.mlc_wb < pf.totals.mlc_wb / 10,
        "idio beats prefetch-only writebacks"
    );
}
