//! Table I conformance: the default simulated system matches the paper's
//! configuration (with the Fig. 5 LLC scaling used for all burst
//! experiments).

use idio_core::config::SystemConfig;
use idio_core::net::gen::TrafficPattern;
use idio_engine::time::Duration;

fn cfg() -> SystemConfig {
    SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 10.0 })
}

#[test]
fn core_frequency_is_3ghz() {
    assert_eq!(cfg().timing.freq, idio_engine::time::Freq::from_ghz(3.0));
}

#[test]
fn cache_geometry_matches_table1() {
    let h = cfg().hierarchy;
    // I/D/L2/L3 (per core size, assoc): 64KB,2 / 1MB,8 / (scaled LLC),12.
    assert_eq!(h.l1d.size_bytes, 64 << 10);
    assert_eq!(h.l1d.ways, 2);
    assert_eq!(h.mlc.size_bytes, 1 << 20);
    assert_eq!(h.mlc.ways, 8);
    // Fig. 5: "we scale down the LLC size in gem5 to 3MB and run only two
    // TouchDrop instances".
    assert_eq!(h.llc.size_bytes, 3 << 20);
    assert_eq!(h.llc.ways, 12);
    assert_eq!(h.ddio_ways, 2);
}

#[test]
fn cache_latencies_match_table1() {
    let h = cfg().hierarchy;
    assert_eq!(h.l1d.latency_cycles, 2);
    assert_eq!(h.mlc.latency_cycles, 12);
    assert_eq!(h.llc.latency_cycles, 24);
}

#[test]
fn network_software_matches_section6() {
    let c = cfg();
    // DPDK defaults: 1024-entry rings, batch of 32, 1514-byte packets.
    assert_eq!(c.ring_size, 1024);
    assert_eq!(c.pmd.batch_size, 32);
    assert!(c.workloads.iter().all(|w| w.packet_len == 1514));
}

#[test]
fn idio_thresholds_match_section6() {
    let c = cfg();
    // rxBurstTHR = 10 Gbps over a 1 us window = 1250 bytes.
    assert_eq!(c.classifier.rx_burst_thr_bytes, 1250);
    assert_eq!(c.classifier.burst_window, Duration::from_us(1));
    // mlcTHR = 50 MTPS = 50 writebacks per 1 us interval.
    assert_eq!(c.idio.mlc_thr, 50);
    assert_eq!(c.idio.control_interval, Duration::from_us(1));
    // mlcWBAvg window: 8192 consecutive samples.
    assert_eq!(c.idio.avg_window, 8192);
    // Default MLC prefetcher queue size: 32 requests (Sec. V-C).
    assert_eq!(c.prefetcher.queue_depth, 32);
}

#[test]
fn dram_matches_table1() {
    let c = cfg();
    // DDR4-3200: 25.6 GB/s per channel.
    assert!((c.dram.channel_bytes_per_sec - 25.6e9).abs() < 1e6);
}

#[test]
fn antagonist_core_gets_256kb_mlc() {
    let c = SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 1.0 })
        .with_antagonist();
    let sys = idio_core::system::System::new(c);
    let h = sys.hierarchy();
    assert_eq!(
        h.mlc(idio_core::cache::addr::CoreId::new(2))
            .capacity_lines(),
        (256 << 10) / 64
    );
    assert_eq!(
        h.mlc(idio_core::cache::addr::CoreId::new(0))
            .capacity_lines(),
        (1 << 20) / 64
    );
}
