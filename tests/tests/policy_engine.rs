//! Property tests for the layered per-queue policy engine.
//!
//! The contract being locked: the six named policies are pure *presets*
//! over `PolicyCaps`, and a configuration that only uses presets — whether
//! expressed globally, as per-tenant overrides, or as per-queue overrides
//! — must behave bit-for-bit like the old global `SteeringPolicy` enum.

use idio_core::config::{SystemConfig, TenantSpec};
use idio_core::net::gen::TrafficPattern;
use idio_core::net::packet::Dscp;
use idio_core::policy::{PolicySpec, SteeringPolicy};
use idio_core::stack::nf::NfKind;
use idio_core::sweep::SweepOptions;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};
use idio_scenario::{builtin, run_scenario};

/// A small two-tenant mixed config exercising both the drop path (with
/// self-invalidation under capable policies) and the forwarding + class-1
/// path (direct DRAM under capable policies).
fn tenant_cfg(policy: SteeringPolicy) -> SystemConfig {
    let mut cfg = SystemConfig::touchdrop_scenario(4, TrafficPattern::Steady { rate_gbps: 5.0 });
    cfg.duration = SimTime::from_us(300);
    cfg.drain_grace = Duration::from_us(200);
    cfg.policy = policy;
    cfg.workloads[2].kind = NfKind::L2FwdPayloadDrop;
    cfg.workloads[3].kind = NfKind::L2FwdPayloadDrop;
    cfg.tenants = vec![
        TenantSpec {
            name: "lat".into(),
            workloads: vec![0, 1],
            flows: 6,
            churn: None,
            train: 1,
            base_port: 5000,
            traffic: TrafficPattern::Steady { rate_gbps: 8.0 },
            packet_len: 1514,
            dscp: Dscp::BEST_EFFORT,
            replay: None,
            policy: None,
        },
        TenantSpec {
            name: "stream".into(),
            workloads: vec![2, 3],
            flows: 4,
            churn: None,
            train: 1,
            base_port: 6000,
            traffic: TrafficPattern::Steady { rate_gbps: 20.0 },
            packet_len: 1514,
            dscp: Dscp::CLASS1_DEFAULT,
            replay: None,
            policy: None,
        },
    ];
    cfg
}

/// (a) Every preset's `PolicyCaps` matches the capability matrix the old
/// enum methods encode — the Fig. 9 mechanism table.
#[test]
fn preset_caps_match_the_legacy_capability_matrix() {
    use SteeringPolicy::*;
    for p in SteeringPolicy::EXTENDED {
        let c = p.caps();
        assert_eq!(
            c.invalidate,
            matches!(p, InvalidateOnly | StaticIdio | Idio),
            "{p}: invalidate"
        );
        assert_eq!(c.direct_dram, matches!(p, StaticIdio | Idio), "{p}: dram");
        assert_eq!(c.tune_ddio_ways, matches!(p, IatDynamic), "{p}: tune");
        assert_eq!(c.invalidate, p.invalidates(), "{p}");
        assert_eq!(c.prefetch, p.prefetch_mode(), "{p}");
        assert_eq!(c.direct_dram, p.direct_dram(), "{p}");
        assert_eq!(c.tune_ddio_ways, p.tunes_ddio_ways(), "{p}");
    }
}

/// A global preset, the same preset written as a per-tenant override on
/// every tenant, and the same preset written as a per-queue override on
/// every queue must all produce byte-identical runs. This is the
/// equivalence that keeps every pre-existing golden valid.
#[test]
fn preset_overrides_are_equivalent_to_the_global_policy() {
    for policy in SteeringPolicy::EXTENDED {
        let spec = PolicySpec::Preset(policy);

        let global = System::new(tenant_cfg(policy)).run();

        let mut by_tenant = tenant_cfg(policy);
        for t in &mut by_tenant.tenants {
            t.policy = Some(spec);
        }
        let by_tenant = System::new(by_tenant).run();

        let mut by_queue = tenant_cfg(policy);
        for q in 0..by_queue.workloads.len() {
            by_queue.queue_policies.insert(q, spec);
        }
        let by_queue = System::new(by_queue).run();

        assert_eq!(global.totals, by_tenant.totals, "{policy}: tenant layer");
        assert_eq!(global.totals, by_queue.totals, "{policy}: queue layer");
        assert_eq!(
            global.metrics.to_json(),
            by_tenant.metrics.to_json(),
            "{policy}: tenant-layer metrics diverged"
        );
        assert_eq!(
            global.metrics.to_json(),
            by_queue.metrics.to_json(),
            "{policy}: queue-layer metrics diverged"
        );
    }
}

/// (b) A *mixed-policy* scenario — tenants running different steering
/// policies in the same cell — renders byte-identically at any worker
/// count. Policy domains must not introduce any scheduling- or
/// thread-dependent state.
#[test]
fn mixed_policy_scenario_is_jobs_independent() {
    let scenario = builtin("llc-duel").expect("built-in");
    let mut renderings = Vec::new();
    for jobs in [1usize, 4, 8] {
        let opts = SweepOptions {
            jobs,
            ..SweepOptions::default()
        };
        let report = run_scenario(&scenario, &opts).expect("valid scenario");
        renderings.push((jobs, report.to_json()));
    }
    for (jobs, r) in &renderings[1..] {
        assert_eq!(
            r, &renderings[0].1,
            "llc-duel report at --jobs {jobs} diverged from --jobs 1"
        );
    }
}

/// The llc-duel mix is a real duel: the two tenants' steering mixes
/// diverge in the same run (IDIO victim uses the MLC path, the
/// DDIO-pinned attacker never does), and both carry policy labels.
#[test]
fn llc_duel_tenants_steer_differently_in_one_run() {
    let scenario = builtin("llc-duel").expect("built-in");
    let report = run_scenario(&scenario, &SweepOptions::serial()).expect("valid scenario");
    let victim = &report.tenants[0];
    let attacker = &report.tenants[1];
    assert_eq!(victim.policy.as_deref(), Some("IDIO"));
    assert_eq!(attacker.policy.as_deref(), Some("DDIO"));
    assert!(victim.steer.mlc > 0, "IDIO victim steers lines to its MLCs");
    assert_eq!(
        attacker.steer.mlc, 0,
        "DDIO attacker never touches the MLC path"
    );
    assert!(
        attacker.steer.llc > 0,
        "attacker's lines all land in the LLC"
    );
    let slo = victim.slo.as_ref().expect("victim declared SLOs");
    assert!(
        slo.pass(),
        "victim meets its SLO bounds: {:?}",
        slo.violations
    );
    assert!(report.slo_violations().is_empty());
}
