//! Scenario-file integration tests: the checked-in examples, the bad-file
//! corpus, and generator determinism.
//!
//! * Every built-in scenario ships as `examples/scenarios/<name>.toml`
//!   (plus sidecar traces under `traces/`); the files must stay the exact
//!   canonical rendering of the built-in, and loading them back must
//!   reproduce the built-in *struct* — and therefore its byte-identical
//!   golden report. Re-generate after intentional built-in changes with:
//!
//!   ```text
//!   IDIO_BLESS=1 cargo test -p idio-integration-tests --test scenario_files
//!   ```
//!
//! * `tests/scenario_files/bad/` holds deliberately broken files; each
//!   must fail with an error naming the offending line and column.
//!
//! * `[generate]` expansion must be byte-stable across worker counts
//!   (process-level double-run determinism is covered by the `scenario`
//!   CLI tests in `crates/bench/tests/`).

use std::path::PathBuf;

use idio_core::net::trace::write_trace;
use idio_core::sweep::SweepOptions;
use idio_scenario::{builtin, builtins, load_path, run_scenario, to_file_string};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests package sits under the repo root")
        .to_path_buf()
}

fn examples_dir() -> PathBuf {
    repo_root().join("examples/scenarios")
}

fn bad_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenario_files/bad")
}

fn blessing() -> bool {
    std::env::var_os("IDIO_BLESS").is_some_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn example_files_are_the_canonical_rendering_of_the_builtins() {
    let dir = examples_dir();
    let mut failures = Vec::new();
    for scenario in builtins() {
        let path = dir.join(format!("{}.toml", scenario.name));
        let rendered = to_file_string(&scenario);
        if blessing() {
            std::fs::create_dir_all(&dir).expect("create examples dir");
            std::fs::write(&path, &rendered).expect("write example");
            for t in &scenario.tenants {
                if let Some(arrivals) = &t.replay {
                    let tdir = dir.join("traces");
                    std::fs::create_dir_all(&tdir).expect("create traces dir");
                    let mut buf = Vec::new();
                    write_trace(&mut buf, arrivals).expect("render trace");
                    std::fs::write(tdir.join(format!("{}.trace", t.name)), buf)
                        .expect("write trace");
                }
            }
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(on_disk) if on_disk == rendered => {}
            Ok(_) => failures.push(format!(
                "{}: {} is not the canonical rendering of the built-in",
                scenario.name,
                path.display()
            )),
            Err(e) => failures.push(format!("{}: {e} ({})", scenario.name, path.display())),
        }
        match load_path(&path) {
            Ok(loaded) if loaded == scenario => {}
            Ok(_) => failures.push(format!(
                "{}: file loads but differs from the built-in struct",
                scenario.name
            )),
            Err(e) => failures.push(format!(
                "{}: {}",
                scenario.name,
                e.at_path(&path.display().to_string())
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "example scenario files diverged (IDIO_BLESS=1 re-blesses after intentional changes):\n{}",
        failures.join("\n")
    );
}

/// The ISSUE's golden guarantee, end to end: running a *file-loaded*
/// scenario produces the byte-identical report the built-in's blessed
/// golden records. `llc-duel` covers policy overrides + SLOs;
/// `trace-replay` covers the sidecar-trace path; `cat-duel` covers the
/// CAT way-partitioning sugar (`cat = "auto"`).
#[test]
fn file_loaded_runs_match_the_blessed_goldens() {
    if blessing() {
        return; // goldens are blessed by golden_scenarios.rs
    }
    let opts = SweepOptions {
        jobs: 2,
        ..SweepOptions::default()
    };
    for name in ["llc-duel", "trace-replay", "cat-duel"] {
        let loaded = load_path(examples_dir().join(format!("{name}.toml")))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = run_scenario(&loaded, &opts).expect("example scenarios are valid");
        let rendered = format!("{}\n", report.to_json());
        let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("golden")
            .join(format!("scenario_{name}.json"));
        let expected = std::fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden.display()));
        assert_eq!(
            expected, rendered,
            "{name}: file-loaded run diverged from the built-in's golden"
        );
    }
}

#[test]
fn datacenter_200_expands_deterministically_and_validates() {
    let path = examples_dir().join("datacenter-200.toml");
    let a = load_path(&path).unwrap_or_else(|e| panic!("{}", e.at_path("datacenter-200.toml")));
    let b = load_path(&path).unwrap();
    assert_eq!(a, b, "expansion is a pure function of the file");
    assert_eq!(a.tenants.len(), 200);
    assert_eq!(a.num_cores(), 200);
    a.validate().expect("generated scenario is valid");
    let attackers = a.tenants.iter().filter(|t| t.policy.is_some()).count();
    assert!(
        (10..=30).contains(&attackers),
        "~10% of 200 tenants are attackers, got {attackers}"
    );
    assert!(
        a.tenants.iter().any(|t| t.slo.is_some()),
        "head kvs tenants carry the SLO bounds the CI smoke step gates on"
    );
}

/// A small generated scenario runs byte-identically at every worker
/// count (the streaming report fold is order-independent).
#[test]
fn generated_scenario_reports_are_worker_count_independent() {
    let src = r#"
name = "gen-jobs"
description = "worker-count independence of generated scenarios"
duration_us = 60
drain_grace_us = 40

[generate]
tenants = 8
seed = 7
flows_per_tenant = 2
total_rate_gbps = 10.0
attacker_frac = 0.25
"#;
    let scenario = idio_scenario::parse_str(src).expect("generator spec parses");
    let mut renders = Vec::new();
    for jobs in [1, 2, 8] {
        let opts = SweepOptions {
            jobs,
            ..SweepOptions::default()
        };
        let report = run_scenario(&scenario, &opts).expect("valid");
        renders.push(report.to_json());
    }
    assert_eq!(renders[0], renders[1], "jobs 1 vs 2");
    assert_eq!(renders[0], renders[2], "jobs 1 vs 8");
}

/// The chained-pipeline golden guarantee: `upf-chain` — recycling pools,
/// chained NFs, per-stage histograms and all — renders the byte-identical
/// blessed golden at every worker count.
#[test]
fn upf_chain_golden_is_byte_identical_at_any_worker_count() {
    if blessing() {
        return; // goldens are blessed by golden_scenarios.rs
    }
    let scenario = builtin("upf-chain").expect("upf-chain is a builtin");
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/scenario_upf-chain.json");
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden.display()));
    for jobs in [1, 2, 8] {
        let opts = SweepOptions {
            jobs,
            ..SweepOptions::default()
        };
        let report = run_scenario(&scenario, &opts).expect("upf-chain is valid");
        assert_eq!(
            expected,
            format!("{}\n", report.to_json()),
            "upf-chain at --jobs {jobs} diverged from the blessed golden"
        );
    }
}

#[test]
fn bad_corpus_errors_name_line_and_column() {
    // (file, line, col, message fragment)
    let cases = [
        ("unknown-key.toml", 9, 1, "unknown key 'corez'"),
        ("dup-tenant.toml", 16, 8, "duplicate tenant name 'same'"),
        ("bad-dscp.toml", 12, 8, "dscp 64 out of range"),
        ("bad-core.toml", 8, 13, "core 70000 out of range"),
        ("truncated.toml", 4, 1, "truncated table header"),
        ("non-utf8.toml", 2, 16, "not valid UTF-8"),
        (
            "tenant-and-generate.toml",
            16,
            1,
            "either [[tenant]] tables or one [generate] table",
        ),
        ("bad-way-mask.toml", 15, 12, "overlaps the 2 DDIO ways"),
        (
            "unknown-chain-stage.toml",
            8,
            19,
            "unknown chain stage 'classfy'",
        ),
        ("bad-pool.toml", 9, 8, "unknown pool 'hugepages'"),
        (
            "bad-flow-count.toml",
            10,
            9,
            "flows 16777217 out of range (0..=16777216)",
        ),
        ("bad-churn.toml", 13, 12, "churn must be positive"),
    ];
    let dir = bad_dir();
    for (file, line, col, needle) in cases {
        let err = load_path(dir.join(file))
            .map(|sc| sc.name)
            .expect_err(&format!("{file} must fail to load"));
        assert_eq!(
            (err.line, err.col),
            (line, col),
            "{file}: wrong position in '{err}'"
        );
        assert!(
            err.msg.contains(needle),
            "{file}: '{}' does not mention '{needle}'",
            err.msg
        );
    }
    // The corpus and the expectation table must stay in sync.
    let on_disk = std::fs::read_dir(&dir)
        .expect("bad corpus dir exists")
        .count();
    assert_eq!(on_disk, cases.len(), "every corpus file has an expectation");
}

#[test]
fn builtin_lookup_and_examples_cover_the_same_names() {
    let dir = examples_dir();
    for scenario in builtins() {
        assert!(
            dir.join(format!("{}.toml", scenario.name)).is_file(),
            "{} has no example file",
            scenario.name
        );
        assert!(builtin(&scenario.name).is_some());
    }
}
