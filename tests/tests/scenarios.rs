//! Cross-crate integration tests of the scenario subsystem.

use idio_core::sweep::SweepOptions;
use idio_scenario::{builtin, run_scenario};

/// The tentpole determinism guarantee: a scenario report is a pure
/// function of `(scenario, root_seed)` — byte-identical JSON at any
/// worker count.
#[test]
fn scenario_report_is_byte_identical_across_jobs() {
    let run = |jobs: usize| {
        let scenario = builtin("noisy-neighbor").expect("built-in");
        run_scenario(
            &scenario,
            &SweepOptions {
                jobs,
                ..SweepOptions::default()
            },
        )
        .expect("valid scenario")
        .to_json()
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "jobs=4 must match jobs=1");
    assert_eq!(serial, run(8), "jobs=8 must match jobs=1");
}

/// The interference report tells a causal story: the bulk tenant's load
/// cannot make the latency tenant *faster*, and every tenant completes
/// packets in both runs so the comparison is populated.
#[test]
fn noisy_neighbor_interference_is_populated() {
    let scenario = builtin("noisy-neighbor").expect("built-in");
    let report = run_scenario(&scenario, &SweepOptions::serial()).expect("valid scenario");
    assert_eq!(report.tenants.len(), 2);
    for t in &report.tenants {
        assert!(t.completed > 0, "tenant '{}' completed packets", t.name);
        let i = t
            .interference
            .unwrap_or_else(|| panic!("tenant '{}' has an interference summary", t.name));
        assert!(i.p99_ratio.is_finite());
    }
}

/// The trace-replay scenario feeds the system through the real trace
/// parser; the replayed tenant must deliver packets on every one of its
/// queues (first-seen round-robin flow pinning).
#[test]
fn trace_replay_spreads_flows_across_queues() {
    let scenario = builtin("trace-replay").expect("built-in");
    let report = run_scenario(&scenario, &SweepOptions::serial()).expect("valid scenario");
    let replay = &report.tenants[0];
    assert_eq!(replay.name, "replay");
    assert!(replay.rx_packets > 0);
    assert_eq!(replay.cores.len(), 2);
    let lat = replay.latency.expect("replayed packets completed");
    assert!(lat.count > 0);
}
