//! Cross-crate integration tests of the scenario subsystem.

use idio_core::sweep::SweepOptions;
use idio_scenario::{builtin, run_scenario};

/// The tentpole determinism guarantee: a scenario report is a pure
/// function of `(scenario, root_seed)` — byte-identical JSON at any
/// worker count.
#[test]
fn scenario_report_is_byte_identical_across_jobs() {
    let run = |jobs: usize| {
        let scenario = builtin("noisy-neighbor").expect("built-in");
        run_scenario(
            &scenario,
            &SweepOptions {
                jobs,
                ..SweepOptions::default()
            },
        )
        .expect("valid scenario")
        .to_json()
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "jobs=4 must match jobs=1");
    assert_eq!(serial, run(8), "jobs=8 must match jobs=1");
}

/// The interference report tells a causal story: the bulk tenant's load
/// cannot make the latency tenant *faster*, and every tenant completes
/// packets in both runs so the comparison is populated.
#[test]
fn noisy_neighbor_interference_is_populated() {
    let scenario = builtin("noisy-neighbor").expect("built-in");
    let report = run_scenario(&scenario, &SweepOptions::serial()).expect("valid scenario");
    assert_eq!(report.tenants.len(), 2);
    for t in &report.tenants {
        assert!(t.completed > 0, "tenant '{}' completed packets", t.name);
        let i = t
            .interference
            .unwrap_or_else(|| panic!("tenant '{}' has an interference summary", t.name));
        assert!(i.p99_ratio.is_finite());
    }
}

/// The trace-replay scenario feeds the system through the real trace
/// parser; the replayed tenant must deliver packets on every one of its
/// queues (first-seen round-robin flow pinning).
#[test]
fn trace_replay_spreads_flows_across_queues() {
    let scenario = builtin("trace-replay").expect("built-in");
    let report = run_scenario(&scenario, &SweepOptions::serial()).expect("valid scenario");
    let replay = &report.tenants[0];
    assert_eq!(replay.name, "replay");
    assert!(replay.rx_packets > 0);
    assert_eq!(replay.cores.len(), 2);
    let lat = replay.latency.expect("replayed packets completed");
    assert!(lat.count > 0);
}

/// The flow-churn scenario is the flow-scale tentpole: tenants whose flow
/// counts dwarf the perfect-filter table must show a *non-degenerate*
/// steering split (perfect hits, live ATR hits, RSS fallbacks all
/// present), with eviction, aging and mis-steer accounting live. Run the
/// mixed cell directly so the raw engine counters are visible alongside
/// the per-tenant report section.
#[test]
fn flow_churn_shows_the_perfect_atr_rss_degradation() {
    let scenario = builtin("flow-churn").expect("built-in");
    let report = idio_core::system::System::new(scenario.mixed_config()).run();
    let c = |name: &str| report.metrics.counter(name);
    for (name, val) in report.metrics.counters() {
        if name.starts_with("fd.") && !name.contains(".q") {
            eprintln!("{name} = {val}");
        }
    }
    assert!(c("fd.perfect_hits") > 0, "pinned flows steer perfectly");
    assert!(c("fd.atr_hits") > 0, "learned flows steer by filter table");
    assert!(
        c("fd.rss_fallbacks") > 0,
        "excess flows fall through to RSS"
    );
    assert!(c("fd.perfect_evicted") > 0, "churn refresh evicts filters");
    assert!(c("fd.atr_aged") > 0, "stale filter-table entries age out");
    assert!(
        c("fd.mis_steered") > 0,
        "RSS lands flows off their home queue"
    );
    let steered =
        c("fd.perfect_hits") + c("fd.atr_hits") + c("fd.atr_collisions") + c("fd.rss_fallbacks");
    assert_eq!(
        steered,
        report.totals.rx_packets + report.totals.rx_drops,
        "every arrival is steered exactly once"
    );
}
