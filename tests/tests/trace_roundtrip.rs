//! Property tests for the packet-trace writer/reader pair
//! (`idio_net::trace`): arbitrary arrival sequences survive a
//! write → read round trip bit-exactly, comments and blank lines are
//! transparent, and out-of-order timestamps are rejected at the right
//! line.

use idio_core::net::gen::Arrival;
use idio_core::net::packet::{Dscp, FiveTuple, Packet};
use idio_core::net::trace::{read_trace, write_trace, TraceError};
use idio_engine::check::{Cases, Gen};
use idio_engine::time::SimTime;

/// A random, time-ordered arrival sequence with sequential packet ids —
/// exactly the shape `read_trace` reconstructs, so a round trip must be
/// the identity.
fn arbitrary_arrivals(g: &mut Gen, min_len: usize) -> Vec<Arrival> {
    let n = g.usize(min_len..48);
    let mut t_ns = 0u64;
    (0..n as u64)
        .map(|id| {
            t_ns += g.u64(1..5_000);
            let flow = FiveTuple {
                src_ip: g.u32(1..u32::MAX),
                dst_ip: g.u32(1..u32::MAX),
                src_port: g.u16(1..u16::MAX),
                dst_port: g.u16(1..u16::MAX),
                proto: if g.bool() { 17 } else { 6 },
            };
            let dscp = Dscp::new(g.u16(0..64) as u8).expect("dscp in range");
            let len = g.u16(64..1515);
            Arrival {
                at: SimTime::from_ns(t_ns),
                packet: Packet::new(id, len, flow, dscp),
            }
        })
        .collect()
}

#[test]
fn write_read_round_trip_is_identity() {
    Cases::new(64).run(|g| {
        let original = arbitrary_arrivals(g, 1);
        let mut buf = Vec::new();
        write_trace(&mut buf, &original).expect("in-memory write");
        let replayed = read_trace(buf.as_slice()).expect("own output parses");
        assert_eq!(replayed, original, "round trip must be the identity");
    });
}

#[test]
fn comments_and_blank_lines_are_transparent() {
    Cases::new(64).run(|g| {
        let original = arbitrary_arrivals(g, 1);
        let mut buf = Vec::new();
        write_trace(&mut buf, &original).expect("in-memory write");
        let text = String::from_utf8(buf).expect("trace is ASCII");
        // Splice a random decoration before each line: a comment, a blank
        // line, an indented blank, or nothing.
        let mut noisy = String::new();
        for line in text.lines() {
            match g.u64(0..4) {
                0 => noisy.push_str("# spliced comment\n"),
                1 => noisy.push('\n'),
                2 => noisy.push_str("   \n"),
                _ => {}
            }
            noisy.push_str(line);
            noisy.push('\n');
        }
        let replayed = read_trace(noisy.as_bytes()).expect("decorated trace parses");
        assert_eq!(replayed, original, "comments and blanks must be ignored");
    });
}

#[test]
fn out_of_order_timestamps_are_rejected_with_line_number() {
    Cases::new(64).run(|g| {
        let mut arrivals = arbitrary_arrivals(g, 2);
        // Break time ordering at a random position: strictly earlier than
        // its predecessor (generation guarantees predecessors are >= 1 ns).
        let k = g.usize(1..arrivals.len());
        arrivals[k].at = SimTime::from_ns(arrivals[k - 1].at.as_ns() - 1);
        arrivals.truncate(k + 1);
        let mut buf = Vec::new();
        write_trace(&mut buf, &arrivals).expect("in-memory write");
        match read_trace(buf.as_slice()) {
            // Header comment is line 1; arrival `k` (0-based) is line k+2.
            Err(TraceError::OutOfOrder(line)) => assert_eq!(line, k + 2),
            other => panic!("expected OutOfOrder, got {other:?}"),
        }
    });
}
